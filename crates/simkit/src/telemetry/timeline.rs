//! Chrome Trace Event export: JSONL telemetry traces → timelines you
//! can open in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The mapping, per [`EventKind`]:
//!
//! * spans → `"B"`/`"E"` duration events on the thread (`tid`) named
//!   by the event's `track` field (0 = the run-level handle), so each
//!   sweep worker gets its own lane;
//! * counters → `"C"` counter tracks carrying the **running total**;
//!   gauges/histograms → `"C"` tracks carrying the sampled value, so
//!   e.g. `thermal.max_silicon_c` renders as a temperature curve next
//!   to the solver spans;
//! * gating / emergency / progress → `"i"` instant events with the
//!   original payload as `args` (gating additionally feeds a
//!   `<name>.active` counter track when the field is present);
//! * solves with a wall-time split (`factor_s`/`solve_s` from
//!   `solve_timed`) → `"X"` complete events whose duration is the
//!   measured solve time, laid *before* the emit timestamp; plain
//!   solves → instants;
//! * frames (the spatial recorder) → `thermal.hotspot` becomes a
//!   counter track of the running max-temperature magnitude; grid /
//!   lane frames become instants with their payload in `args`.
//!
//! Timestamps are the trace's `t` seconds converted to microseconds
//! (the Trace Event unit). Multi-track traces interleave per-handle
//! epochs that differ by a few milliseconds; each lane is internally
//! consistent, which is what span pairing needs.
//!
//! [`validate`] re-parses an export with the in-tree JSON parser and
//! checks the structural contract (a `traceEvents` array of objects
//! with `ph`/`ts`/`pid`/`tid`), counting phases so CLI callers and CI
//! can assert shape without external tooling.

use super::analyze::{ParsedEvent, TraceReader};
use super::json::{self, JsonValue};
use super::EventKind;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Field keys lifted out of `args` because they map onto the Trace
/// Event envelope itself.
const ENVELOPE_FIELDS: [&str; 1] = ["track"];

/// Streams a JSONL trace into a Chrome Trace Event JSON document.
///
/// # Errors
///
/// Propagates I/O errors; malformed trace lines are skipped by the
/// underlying [`TraceReader`].
pub fn chrome_trace(reader: impl BufRead) -> io::Result<String> {
    let mut trace = TraceReader::new(reader);
    let mut exporter = Exporter::default();
    while let Some(event) = trace.next_event()? {
        exporter.observe(&event);
    }
    Ok(exporter.render())
}

/// Converts a trace file; see [`chrome_trace`].
///
/// # Errors
///
/// Propagates open/read failures.
pub fn chrome_trace_from_path(path: &Path) -> io::Result<String> {
    chrome_trace(BufReader::new(File::open(path)?))
}

#[derive(Debug, Default)]
struct Exporter {
    /// Rendered trace-event objects, in input order.
    events: Vec<String>,
    /// Track ids seen, in first-sight order (drives thread metadata).
    tracks: Vec<u64>,
    /// Running totals per counter name.
    totals: Vec<(String, u64)>,
}

impl Exporter {
    fn observe(&mut self, event: &ParsedEvent) {
        let track = event.field_u64("track").unwrap_or(0);
        if !self.tracks.contains(&track) {
            self.tracks.push(track);
        }
        let ts_us = event.t_s * 1e6;
        match event.kind {
            EventKind::SpanStart => {
                self.events
                    .push(envelope(&event.name, "B", ts_us, track, "span", None));
            }
            EventKind::SpanEnd => {
                self.events
                    .push(envelope(&event.name, "E", ts_us, track, "span", None));
            }
            EventKind::Counter => {
                let delta = event.field_u64("delta").unwrap_or(1);
                let total = match self.totals.iter_mut().find(|(n, _)| *n == event.name) {
                    Some(entry) => {
                        entry.1 += delta;
                        entry.1
                    }
                    None => {
                        self.totals.push((event.name.clone(), delta));
                        delta
                    }
                };
                let args = format!("{{\"value\":{total}}}");
                self.events.push(envelope(
                    &event.name,
                    "C",
                    ts_us,
                    track,
                    "counter",
                    Some(&args),
                ));
            }
            EventKind::Gauge | EventKind::Histogram => {
                if let Some(v) = event.field_f64("value") {
                    let mut args = String::from("{\"value\":");
                    json::write_f64(&mut args, v);
                    args.push('}');
                    self.events.push(envelope(
                        &event.name,
                        "C",
                        ts_us,
                        track,
                        "metric",
                        Some(&args),
                    ));
                }
            }
            EventKind::Gating | EventKind::Emergency | EventKind::Progress => {
                let cat = match event.kind {
                    EventKind::Gating => "gating",
                    EventKind::Emergency => "emergency",
                    _ => "progress",
                };
                let args = args_json(event);
                self.events
                    .push(envelope(&event.name, "i", ts_us, track, cat, Some(&args)));
                if event.kind == EventKind::Gating {
                    if let Some(active) = event.field_f64("active") {
                        let name = format!("{}.active", event.name);
                        let mut args = String::from("{\"value\":");
                        json::write_f64(&mut args, active);
                        args.push('}');
                        self.events
                            .push(envelope(&name, "C", ts_us, track, "gating", Some(&args)));
                    }
                }
            }
            EventKind::Solve => {
                let dur_us = (event.field_f64("factor_s").unwrap_or(0.0)
                    + event.field_f64("solve_s").unwrap_or(0.0))
                    * 1e6;
                let args = args_json(event);
                if dur_us > 0.0 {
                    // The emit happens when the solve finishes; lay the
                    // complete event over the measured interval.
                    let mut obj = String::from("{\"name\":");
                    json::write_str(&mut obj, &event.name);
                    let _ = write!(
                        obj,
                        ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\
                         \"cat\":\"solve\",\"args\":{}}}",
                        (ts_us - dur_us).max(0.0),
                        dur_us,
                        track,
                        args
                    );
                    self.events.push(obj);
                } else {
                    self.events.push(envelope(
                        &event.name,
                        "i",
                        ts_us,
                        track,
                        "solve",
                        Some(&args),
                    ));
                }
            }
            EventKind::Frame => {
                if let Some(v) = event.field_f64("value") {
                    // Hotspot magnitude (and any scalar frame summary)
                    // as a counter track.
                    let mut args = String::from("{\"value\":");
                    json::write_f64(&mut args, v);
                    args.push('}');
                    self.events.push(envelope(
                        &event.name,
                        "C",
                        ts_us,
                        track,
                        "frame",
                        Some(&args),
                    ));
                } else {
                    let args = args_json(event);
                    self.events.push(envelope(
                        &event.name,
                        "i",
                        ts_us,
                        track,
                        "frame",
                        Some(&args),
                    ));
                }
            }
        }
    }

    fn render(self) -> String {
        let mut tracks = self.tracks;
        tracks.sort_unstable();
        if tracks.is_empty() {
            tracks.push(0);
        }
        let mut out = String::with_capacity(64 + 96 * self.events.len());
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for track in &tracks {
            let name = if *track == 0 {
                "run".to_string()
            } else {
                format!("worker {track}")
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\
                 \"args\":{{\"name\":"
            );
            json::write_str(&mut out, &name);
            out.push_str("}}");
        }
        for event in &self.events {
            out.push(',');
            out.push_str(event);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Renders one trace-event object with the common envelope.
fn envelope(name: &str, ph: &str, ts_us: f64, tid: u64, cat: &str, args: Option<&str>) -> String {
    let mut obj = String::from("{\"name\":");
    json::write_str(&mut obj, name);
    let _ = write!(
        obj,
        ",\"ph\":\"{ph}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{tid}"
    );
    let _ = write!(obj, ",\"cat\":\"{cat}\"");
    if let Some(args) = args {
        let _ = write!(obj, ",\"args\":{args}");
    }
    obj.push('}');
    obj
}

/// Serialises every payload field (minus envelope fields) as an args
/// object.
fn args_json(event: &ParsedEvent) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in &event.fields {
        if ENVELOPE_FIELDS.contains(&key.as_str()) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        json::write_str(&mut out, key);
        out.push(':');
        write_json_value(&mut out, value);
    }
    out.push('}');
    out
}

fn write_json_value(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => json::write_f64(out, *n),
        JsonValue::Str(s) => json::write_str(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(out, k);
                out.push(':');
                write_json_value(out, v);
            }
            out.push('}');
        }
    }
}

/// Phase counts of a validated Chrome-trace export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total objects in `traceEvents`.
    pub events: usize,
    /// `"B"`/`"E"` span begin/end events.
    pub spans: usize,
    /// `"X"` complete (duration) events.
    pub complete: usize,
    /// `"C"` counter samples.
    pub counters: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"M"` metadata records.
    pub metadata: usize,
    /// Distinct `tid` lanes.
    pub tracks: usize,
}

/// Validates the structural contract of a Chrome Trace Event document
/// produced by [`chrome_trace`] (or any conforming tool): top-level
/// `traceEvents` array whose members are objects with a known `ph`, a
/// finite `ts` (metadata excepted), and `pid`/`tid`.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeTraceStats::default();
    let mut tids: Vec<f64> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| format!("traceEvents[{i}]: {what}");
        if !matches!(event, JsonValue::Obj(_)) {
            return Err(fail("not an object"));
        }
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing ph"))?;
        match ph {
            "B" | "E" => stats.spans += 1,
            "X" => stats.complete += 1,
            "C" => stats.counters += 1,
            "i" => stats.instants += 1,
            "M" => stats.metadata += 1,
            other => return Err(fail(&format!("unknown ph {other:?}"))),
        }
        if ph != "M" {
            event
                .get("ts")
                .and_then(JsonValue::as_f64)
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| fail("missing finite ts"))?;
        }
        let tid = event
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| fail("missing tid"))?;
        if event.get("pid").and_then(JsonValue::as_f64).is_none() {
            return Err(fail("missing pid"));
        }
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        stats.events += 1;
    }
    stats.tracks = tids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventKind, Telemetry};

    fn sample_trace() -> String {
        let (tel, sink) = Telemetry::recorder();
        {
            let _run = tel.span("engine.run");
            tel.counter("engine.steps", 5);
            tel.counter("engine.steps", 3);
            tel.gauge("thermal.max_silicon_c", 82.5);
            tel.event(EventKind::Gating, "engine.gating")
                .field_u64("decision", 0)
                .field_u64("active", 12)
                .emit();
            tel.event(EventKind::Emergency, "engine.emergency_check")
                .field_u64("flagged_domains", 1)
                .emit();
            tel.solve_timed("thermal.steady_mgcg", 9, 1e-10, "mgcg", 0.001, 0.002);
            tel.solve("pdn.ir_cg", 7, 1e-9);
            tel.event(EventKind::Frame, "thermal.hotspot")
                .field_f64("value", 91.25)
                .field_u64("i", 3)
                .field_u64("j", 4)
                .emit();
            tel.event(EventKind::Frame, "thermal.frame")
                .field_u64("step", 10)
                .field_str("data", "1.0,2.0;3.0,4.0")
                .emit();
        }
        sink.events().iter().map(|e| e.to_json() + "\n").collect()
    }

    #[test]
    fn export_is_valid_and_covers_all_shapes() {
        let text = sample_trace();
        let out = chrome_trace(text.as_bytes()).unwrap();
        let stats = validate(&out).expect("export validates");
        assert_eq!(stats.spans, 2); // engine.run B + E
        assert_eq!(stats.complete, 1); // timed mgcg solve
        assert!(stats.counters >= 5); // steps ×2, gauge, gating.active, hotspot
        assert!(stats.instants >= 3); // gating, emergency, plain solve, frame
        assert_eq!(stats.metadata, 1); // single track
        assert_eq!(stats.tracks, 1);
        // Counter tracks carry running totals.
        assert!(out.contains("{\"value\":8}"), "running counter total");
        // The timed solve's interval ends at its emit timestamp.
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":3000.000"));
    }

    #[test]
    fn tracked_events_land_on_their_own_lane() {
        let sink = std::sync::Arc::new(crate::telemetry::MemorySink::default());
        let run = Telemetry::with_sink(sink.clone());
        let worker = Telemetry::with_sink_tracked(sink.clone(), 2);
        {
            let _a = run.span("engine.run");
            let _b = worker.span("sweep.cell");
        }
        let text: String = sink.events().iter().map(|e| e.to_json() + "\n").collect();
        let out = chrome_trace(text.as_bytes()).unwrap();
        let stats = validate(&out).unwrap();
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.metadata, 2);
        assert!(out.contains("\"worker 2\""));
        assert!(out.contains("\"run\""));
        // The worker's span sits on tid 2 and its track field does not
        // leak into args.
        assert!(out.contains("\"tid\":2"));
        assert!(!out.contains("\"track\""));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(
            validate("{\"traceEvents\":[{\"ph\":\"Q\",\"ts\":0,\"pid\":1,\"tid\":0}]}").is_err()
        );
        assert!(
            validate("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":0}]}")
                .is_err()
        );
        let ok = validate(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":1.5,\"pid\":1,\"tid\":0}]}",
        )
        .unwrap();
        assert_eq!(ok.spans, 1);
    }

    #[test]
    fn empty_trace_still_renders_a_valid_document() {
        let out = chrome_trace(&b""[..]).unwrap();
        let stats = validate(&out).expect("empty export validates");
        assert_eq!(stats.metadata, 1); // default run lane
        assert_eq!(stats.spans + stats.counters + stats.instants, 0);
    }
}
