//! Dependency-free JSON writing and parsing for telemetry artifacts.
//!
//! The workspace deliberately has no third-party dependencies, so the
//! JSONL trace writer, the run-manifest serialiser, and the `jq`-free
//! CI validator share this small module: an escaping string/number
//! writer and a strict recursive-descent parser producing a
//! [`JsonValue`] tree.
//!
//! Numbers are parsed as `f64` (ample for trace timestamps, counts, and
//! residuals); non-finite floats serialise as `null`, matching strict
//! JSON.
//!
//! # Examples
//!
//! ```
//! use simkit::telemetry::json::{parse, JsonValue};
//!
//! let v = parse(r#"{"kind":"solve","iters":12,"ok":true}"#).unwrap();
//! assert_eq!(v.get("kind").and_then(JsonValue::as_str), Some("solve"));
//! assert_eq!(v.get("iters").and_then(JsonValue::as_f64), Some(12.0));
//! assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
//! ```

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys kept in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number (`null` when non-finite).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal unescaped run in one shot
                    // (multi-byte UTF-8 continuation bytes are all
                    // ≥ 0x80, so the bytewise scan can never split a
                    // character on '"' or '\\'). Validating only the
                    // run keeps parsing linear in the document size.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":false},"e":"x"}"#).expect("valid json");
        let a = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert!(v.get("b").and_then(|b| b.get("c")).expect("c").is_null());
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"slash\\tab\tünïcode";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        let parsed = parse(&encoded).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut encoded = String::new();
        write_str(&mut encoded, "\u{1}");
        assert_eq!(encoded, "\"\\u0001\"");
        assert_eq!(parse(&encoded).expect("parses").as_str(), Some("\u{1}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 1.5e-9);
        assert_eq!(out.parse::<f64>().expect("number"), 1.5e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"open", "12x", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").expect("obj"), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").expect("arr"), JsonValue::Arr(vec![]));
        assert_eq!(parse(" [ ] ").expect("spaced arr"), JsonValue::Arr(vec![]));
    }

    #[test]
    fn every_escapable_string_round_trips() {
        // Everything the writer can emit: named escapes, \uXXXX control
        // codes, multi-byte UTF-8, and an astral-plane character (kept
        // literal, not as a surrogate pair).
        for original in [
            "",
            "\"\\/\u{8}\u{c}\n\r\t",
            "\u{0}\u{1f}\u{7f}",
            "κλίμα 気温 🌡",
            "back\\slash at end\\",
        ] {
            let mut encoded = String::new();
            write_str(&mut encoded, original);
            let parsed = parse(&encoded).expect("writer output parses");
            assert_eq!(parsed.as_str(), Some(original), "via {encoded}");
        }
    }

    #[test]
    fn unicode_escapes_parse_and_lone_surrogates_are_replaced() {
        assert_eq!(parse(r#""Aé☃""#).expect("parses").as_str(), Some("Aé☃"));
        // A lone surrogate half is not a char; the parser substitutes
        // U+FFFD rather than erroring out mid-trace.
        assert_eq!(
            parse(r#""\ud800""#).expect("parses").as_str(),
            Some("\u{fffd}")
        );
        assert!(parse(r#""\u00g1""#).is_err());
        assert!(parse(r#""\u00""#).is_err());
    }

    #[test]
    fn non_finite_values_round_trip_as_null() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert!(parse(&out).expect("null parses").is_null());
        }
    }

    #[test]
    fn deeply_nested_documents_parse() {
        // 64 levels of alternating object/array nesting — far deeper
        // than any event the tracer writes, so recursion depth is never
        // the thing that corrupts a trace read.
        let mut doc = String::from("1");
        for i in 0..64 {
            doc = if i % 2 == 0 {
                format!("[{doc}]")
            } else {
                format!("{{\"n\":{doc}}}")
            };
        }
        let mut v = parse(&doc).expect("deep nesting parses");
        for i in (0..64).rev() {
            v = if i % 2 == 0 {
                v.as_array().expect("array level")[0].clone()
            } else {
                v.get("n").expect("object level").clone()
            };
        }
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn duplicate_keys_keep_first_occurrence_on_get() {
        let v = parse(r#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.as_object().expect("obj").len(), 2);
    }
}
