//! Declarative health/alert rules over live trace aggregates.
//!
//! A rules file is a small JSON document (schema
//! [`RULES_SCHEMA`] = `thermogater.rules/v1`) listing thresholds over
//! the metrics a [`LiveStats`] tracks — counters, rollup percentiles,
//! emergency rate, solver iteration spikes, gating churn:
//!
//! ```json
//! {
//!   "schema": "thermogater.rules/v1",
//!   "rules": [
//!     {"name": "decisions made", "metric": "counter:engine.decisions",
//!      "fail_below": 1},
//!     {"name": "noise p95 sane", "metric": "p95:engine.window_noise_pct",
//!      "warn_above": 25, "fail_above": 60},
//!     {"name": "no solver blowup", "metric": "solver_iters_max:thermal.gs",
//!      "fail_above": 500, "missing": "ok"}
//!   ]
//! }
//! ```
//!
//! Each rule yields [`Severity::Ok`], [`Severity::Warn`], or
//! [`Severity::Fail`]; `fail_*` bounds are checked before `warn_*`, and
//! a metric the trace does not (yet) carry yields the rule's `missing`
//! severity (default `warn`). Evaluation is a pure function of the
//! current aggregate state, so `tg-obs watch` can re-evaluate the same
//! [`RuleSet`] incrementally as events stream in, and `tg-obs check`
//! can gate CI on a finished trace — same file, same verdicts. Reports
//! render deterministically: rules appear in file order with stable
//! number formatting, so two identical runs produce byte-identical
//! reports.

use super::json::{self, JsonValue};
use super::live::LiveStats;
use std::fmt;

/// Schema identifier required of every rules file.
pub const RULES_SCHEMA: &str = "thermogater.rules/v1";

/// The verdict of one rule (ordered: `Ok < Warn < Fail`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Within bounds.
    #[default]
    Ok,
    /// Outside a `warn_*` bound (or the metric is missing, by default).
    Warn,
    /// Outside a `fail_*` bound — gates CI.
    Fail,
}

impl Severity {
    /// The wire/report name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Fail => "fail",
        }
    }

    fn parse(name: &str) -> Option<Severity> {
        match name {
            "ok" => Some(Severity::Ok),
            "warn" => Some(Severity::Warn),
            "fail" => Some(Severity::Fail),
            _ => None,
        }
    }
}

/// Which rollup statistic a rollup selector reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupStat {
    /// Streaming p50 estimate.
    P50,
    /// Streaming p95 estimate.
    P95,
    /// Streaming p99 estimate.
    P99,
    /// Exact mean.
    Mean,
    /// Exact minimum.
    Min,
    /// Exact maximum.
    Max,
    /// Exact finite-sample count.
    Samples,
}

impl RollupStat {
    fn as_str(self) -> &'static str {
        match self {
            RollupStat::P50 => "p50",
            RollupStat::P95 => "p95",
            RollupStat::P99 => "p99",
            RollupStat::Mean => "mean",
            RollupStat::Min => "min",
            RollupStat::Max => "max",
            RollupStat::Samples => "samples",
        }
    }
}

/// What a rule measures: a typed selector parsed from strings like
/// `counter:engine.decisions` or `p95:engine.window_noise_pct`.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSelector {
    /// Total events folded in.
    Events,
    /// Malformed trace lines reported by the reader.
    MalformedLines,
    /// A counter total: `counter:<name>`.
    Counter(String),
    /// A statistic of a name-level merged value rollup:
    /// `p50|p95|p99|mean|min|max|samples:<name>`.
    Rollup(RollupStat, String),
    /// Fraction of emergency checks that flagged a domain:
    /// `emergency_rate`.
    EmergencyRate,
    /// Emergency-check events seen: `emergency_checks`.
    EmergencyChecks,
    /// Mispredicted emergency domains, summed: `emergency_mispredicted`.
    EmergencyMispredicted,
    /// Total gating transitions (on + off): `gating_churn`.
    GatingChurn,
    /// Mean transitions per gating decision:
    /// `gating_churn_per_decision`.
    GatingChurnPerDecision,
    /// Gating decision events seen: `gating_decisions`.
    GatingDecisions,
    /// Streaming p95 of a solve site's iteration counts:
    /// `solver_iters_p95:<site>`.
    SolverItersP95(String),
    /// Maximum iterations of a solve site: `solver_iters_max:<site>`.
    SolverItersMax(String),
    /// Solve events of a site: `solver_solves:<site>`.
    SolverSolves(String),
    /// Worst final residual of a solve site:
    /// `solver_residual_max:<site>`.
    SolverResidualMax(String),
}

impl MetricSelector {
    /// Parses a selector string.
    ///
    /// # Errors
    ///
    /// Describes the unknown selector head or a missing `:<name>` part.
    pub fn parse(text: &str) -> Result<MetricSelector, String> {
        let (head, arg) = match text.split_once(':') {
            Some((head, arg)) if !arg.is_empty() => (head, Some(arg)),
            Some((head, _)) => {
                return Err(format!("selector `{head}:` is missing its name"));
            }
            None => (text, None),
        };
        let named = |arg: Option<&str>| -> Result<String, String> {
            arg.map(str::to_string)
                .ok_or_else(|| format!("selector `{head}` needs `:<name>`"))
        };
        let bare = |selector: MetricSelector| -> Result<MetricSelector, String> {
            if arg.is_some() {
                Err(format!("selector `{head}` takes no `:<name>`"))
            } else {
                Ok(selector)
            }
        };
        let rollup = |stat: RollupStat| Ok(MetricSelector::Rollup(stat, named(arg)?));
        match head {
            "events" => bare(MetricSelector::Events),
            "malformed_lines" => bare(MetricSelector::MalformedLines),
            "counter" => Ok(MetricSelector::Counter(named(arg)?)),
            "p50" => rollup(RollupStat::P50),
            "p95" => rollup(RollupStat::P95),
            "p99" => rollup(RollupStat::P99),
            "mean" => rollup(RollupStat::Mean),
            "min" => rollup(RollupStat::Min),
            "max" => rollup(RollupStat::Max),
            "samples" => rollup(RollupStat::Samples),
            "emergency_rate" => bare(MetricSelector::EmergencyRate),
            "emergency_checks" => bare(MetricSelector::EmergencyChecks),
            "emergency_mispredicted" => bare(MetricSelector::EmergencyMispredicted),
            "gating_churn" => bare(MetricSelector::GatingChurn),
            "gating_churn_per_decision" => bare(MetricSelector::GatingChurnPerDecision),
            "gating_decisions" => bare(MetricSelector::GatingDecisions),
            "solver_iters_p95" => Ok(MetricSelector::SolverItersP95(named(arg)?)),
            "solver_iters_max" => Ok(MetricSelector::SolverItersMax(named(arg)?)),
            "solver_solves" => Ok(MetricSelector::SolverSolves(named(arg)?)),
            "solver_residual_max" => Ok(MetricSelector::SolverResidualMax(named(arg)?)),
            other => Err(format!("unknown metric selector `{other}`")),
        }
    }

    /// Reads the selected metric from an aggregate; `None` when the
    /// trace does not (yet) carry it.
    pub fn resolve(&self, stats: &LiveStats) -> Option<f64> {
        match self {
            MetricSelector::Events => Some(stats.events as f64),
            MetricSelector::MalformedLines => Some(stats.malformed_lines as f64),
            MetricSelector::Counter(name) => stats
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v as f64),
            MetricSelector::Rollup(stat, name) => {
                let merged = stats.merged_rollup(name)?;
                match stat {
                    RollupStat::P50 => merged.p50,
                    RollupStat::P95 => merged.p95,
                    RollupStat::P99 => merged.p99,
                    RollupStat::Mean => merged.mean,
                    RollupStat::Min => merged.min,
                    RollupStat::Max => merged.max,
                    RollupStat::Samples => Some(merged.count as f64),
                }
            }
            MetricSelector::EmergencyRate => stats.emergency.emergency_rate(),
            MetricSelector::EmergencyChecks => {
                (stats.emergency.checks > 0).then_some(stats.emergency.checks as f64)
            }
            MetricSelector::EmergencyMispredicted => {
                (stats.emergency.checks > 0).then_some(stats.emergency.mispredicted as f64)
            }
            MetricSelector::GatingChurn => {
                (stats.gating.decisions > 0).then_some(stats.gating.churn() as f64)
            }
            MetricSelector::GatingChurnPerDecision => stats.gating.churn_per_decision(),
            MetricSelector::GatingDecisions => {
                (stats.gating.decisions > 0).then_some(stats.gating.decisions as f64)
            }
            MetricSelector::SolverItersP95(site) => stats.solver(site)?.iters.percentile(95.0),
            MetricSelector::SolverItersMax(site) => stats.solver(site)?.iters.max(),
            MetricSelector::SolverSolves(site) => stats.solver(site).map(|s| s.solves() as f64),
            MetricSelector::SolverResidualMax(site) => stats.solver(site)?.residuals.max(),
        }
    }
}

impl fmt::Display for MetricSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricSelector::Events => write!(f, "events"),
            MetricSelector::MalformedLines => write!(f, "malformed_lines"),
            MetricSelector::Counter(n) => write!(f, "counter:{n}"),
            MetricSelector::Rollup(stat, n) => write!(f, "{}:{n}", stat.as_str()),
            MetricSelector::EmergencyRate => write!(f, "emergency_rate"),
            MetricSelector::EmergencyChecks => write!(f, "emergency_checks"),
            MetricSelector::EmergencyMispredicted => write!(f, "emergency_mispredicted"),
            MetricSelector::GatingChurn => write!(f, "gating_churn"),
            MetricSelector::GatingChurnPerDecision => {
                write!(f, "gating_churn_per_decision")
            }
            MetricSelector::GatingDecisions => write!(f, "gating_decisions"),
            MetricSelector::SolverItersP95(s) => write!(f, "solver_iters_p95:{s}"),
            MetricSelector::SolverItersMax(s) => write!(f, "solver_iters_max:{s}"),
            MetricSelector::SolverSolves(s) => write!(f, "solver_solves:{s}"),
            MetricSelector::SolverResidualMax(s) => write!(f, "solver_residual_max:{s}"),
        }
    }
}

/// One threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Human-readable rule name (appears in the report).
    pub name: String,
    /// What the rule measures.
    pub metric: MetricSelector,
    /// Warn when the value exceeds this.
    pub warn_above: Option<f64>,
    /// Fail when the value exceeds this.
    pub fail_above: Option<f64>,
    /// Warn when the value is below this.
    pub warn_below: Option<f64>,
    /// Fail when the value is below this.
    pub fail_below: Option<f64>,
    /// Verdict when the metric is absent from the trace (default
    /// [`Severity::Warn`]).
    pub missing: Severity,
}

impl Rule {
    /// A rule with no bounds (always ok when the metric is present) —
    /// builder-style entry point for tests.
    pub fn new(name: impl Into<String>, metric: MetricSelector) -> Self {
        Rule {
            name: name.into(),
            metric,
            warn_above: None,
            fail_above: None,
            warn_below: None,
            fail_below: None,
            missing: Severity::Warn,
        }
    }

    /// Evaluates the rule against the current aggregate state.
    pub fn evaluate(&self, stats: &LiveStats) -> RuleOutcome {
        let value = self.metric.resolve(stats);
        let (severity, note) = match value {
            None => (self.missing, "metric missing".to_string()),
            Some(v) => self.judge(v),
        };
        RuleOutcome {
            rule: self.name.clone(),
            metric: self.metric.to_string(),
            value,
            severity,
            note,
        }
    }

    fn judge(&self, v: f64) -> (Severity, String) {
        let over = |t: f64| format!("{} > {}", fmt_value(v), fmt_value(t));
        let under = |t: f64| format!("{} < {}", fmt_value(v), fmt_value(t));
        if let Some(t) = self.fail_above.filter(|t| v > *t) {
            return (Severity::Fail, over(t));
        }
        if let Some(t) = self.fail_below.filter(|t| v < *t) {
            return (Severity::Fail, under(t));
        }
        if let Some(t) = self.warn_above.filter(|t| v > *t) {
            return (Severity::Warn, over(t));
        }
        if let Some(t) = self.warn_below.filter(|t| v < *t) {
            return (Severity::Warn, under(t));
        }
        (Severity::Ok, String::new())
    }
}

/// A parsed rules file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleSet {
    /// Rules in file order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Parses and validates a rules document.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem: malformed JSON, a wrong
    /// or missing schema tag, a missing member, an unknown selector, or
    /// a non-numeric bound.
    pub fn from_json(text: &str) -> Result<RuleSet, String> {
        let doc = json::parse(text.trim())?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("rules file missing \"schema\"")?;
        if schema != RULES_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {RULES_SCHEMA:?})"
            ));
        }
        let entries = doc
            .get("rules")
            .and_then(JsonValue::as_array)
            .ok_or("rules file missing \"rules\" array")?;
        let mut rules = Vec::with_capacity(entries.len());
        for (index, entry) in entries.iter().enumerate() {
            let context = |what: &str| format!("rule {index}: {what}");
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| context("missing string \"name\""))?;
            let metric = entry
                .get("metric")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| context("missing string \"metric\""))?;
            let metric = MetricSelector::parse(metric).map_err(|e| context(&e))?;
            let bound = |key: &str| -> Result<Option<f64>, String> {
                match entry.get(key) {
                    None => Ok(None),
                    Some(v) => v
                        .as_f64()
                        .filter(|x| x.is_finite())
                        .map(Some)
                        .ok_or_else(|| context(&format!("\"{key}\" is not a finite number"))),
                }
            };
            let missing = match entry.get("missing") {
                None => Severity::Warn,
                Some(v) => v
                    .as_str()
                    .and_then(Severity::parse)
                    .ok_or_else(|| context("\"missing\" must be \"ok\", \"warn\", or \"fail\""))?,
            };
            rules.push(Rule {
                name: name.to_string(),
                metric,
                warn_above: bound("warn_above")?,
                fail_above: bound("fail_above")?,
                warn_below: bound("warn_below")?,
                fail_below: bound("fail_below")?,
                missing,
            });
        }
        Ok(RuleSet { rules })
    }

    /// Evaluates every rule against the current aggregate state, in
    /// file order.
    pub fn evaluate(&self, stats: &LiveStats) -> RuleReport {
        RuleReport {
            outcomes: self.rules.iter().map(|r| r.evaluate(stats)).collect(),
        }
    }
}

/// One rule's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// Rule name (from the file).
    pub rule: String,
    /// Canonical selector string.
    pub metric: String,
    /// The resolved value, when the metric was present.
    pub value: Option<f64>,
    /// The verdict.
    pub severity: Severity,
    /// Which bound tripped (empty for ok).
    pub note: String,
}

/// All verdicts of one evaluation pass, in rule order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuleReport {
    /// Per-rule verdicts.
    pub outcomes: Vec<RuleOutcome>,
}

impl RuleReport {
    /// The most severe verdict (`Ok` for an empty report).
    pub fn worst(&self) -> Severity {
        self.outcomes
            .iter()
            .map(|o| o.severity)
            .max()
            .unwrap_or(Severity::Ok)
    }

    /// Rules that failed.
    pub fn failures(&self) -> impl Iterator<Item = &RuleOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.severity == Severity::Fail)
    }

    /// Count of outcomes at one severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.severity == severity)
            .count()
    }

    /// Renders the deterministic report table: rules in file order,
    /// stable value formatting, a one-line tally at the end.
    pub fn render(&self) -> String {
        let headers = ["rule", "metric", "value", "status", "note"];
        let mut rows: Vec<[String; 5]> = Vec::with_capacity(self.outcomes.len());
        for o in &self.outcomes {
            rows.push([
                o.rule.clone(),
                o.metric.clone(),
                o.value.map_or("-".to_string(), fmt_value),
                o.severity.as_str().to_string(),
                o.note.clone(),
            ]);
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[&str]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                if i + 1 < cells.len() {
                    for _ in cell.chars().count()..*w {
                        out.push(' ');
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &headers);
        for row in &rows {
            let cells: Vec<&str> = row.iter().map(String::as_str).collect();
            render_row(&mut out, &cells);
        }
        out.push_str(&format!(
            "{} rule(s): {} ok, {} warn, {} fail\n",
            self.outcomes.len(),
            self.count(Severity::Ok),
            self.count(Severity::Warn),
            self.count(Severity::Fail),
        ));
        out
    }
}

/// Deterministic, compact value formatting for reports: integers
/// verbatim, small/huge magnitudes in scientific notation, everything
/// else at up to six trimmed decimals.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    if v != 0.0 && (v.abs() < 1e-4 || v.abs() >= 1e9) {
        return format!("{v:e}");
    }
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EventKind, Telemetry};

    /// A small aggregate with gating, counters, a rollup, solves, and
    /// emergencies.
    fn sample_stats() -> LiveStats {
        let (tel, sink) = Telemetry::recorder();
        for k in 0..20u64 {
            tel.counter("engine.decisions", 1);
            tel.histogram("engine.window_noise_pct", 5.0 + (k % 10) as f64);
            tel.solve("thermal.gs", 8 + (k % 4) as usize, 1e-9);
            tel.event(EventKind::Gating, "engine.gating")
                .field_u64("active", 12)
                .field_u64("turned_on", 1)
                .field_u64("turned_off", 1)
                .emit();
            tel.event(EventKind::Emergency, "engine.emergency_check")
                .field_u64("flagged_domains", u64::from(k == 3))
                .field_u64("true_domains", u64::from(k == 3))
                .field_u64("mispredicted", 0)
                .emit();
        }
        let mut stats = LiveStats::new();
        for event in sink.events() {
            stats.observe_event(&event);
        }
        stats
    }

    fn rules_doc() -> String {
        format!(
            r#"{{
  "schema": "{RULES_SCHEMA}",
  "rules": [
    {{"name": "decisions made", "metric": "counter:engine.decisions", "fail_below": 1}},
    {{"name": "noise p95", "metric": "p95:engine.window_noise_pct", "warn_above": 10, "fail_above": 50}},
    {{"name": "no emergencies", "metric": "emergency_rate", "warn_above": 0.2}},
    {{"name": "solver sane", "metric": "solver_iters_max:thermal.gs", "fail_above": 500}},
    {{"name": "absent metric", "metric": "counter:not.there"}},
    {{"name": "absent but fine", "metric": "gauge is wrong", "missing": "ok"}}
  ]
}}"#
        )
        .replace("\"metric\": \"gauge is wrong\"", "\"metric\": \"max:not.there\"")
    }

    #[test]
    fn parses_and_evaluates_a_rules_file() {
        let set = RuleSet::from_json(&rules_doc()).expect("valid rules file");
        assert_eq!(set.rules.len(), 6);
        let report = set.evaluate(&sample_stats());
        let by_name = |name: &str| {
            report
                .outcomes
                .iter()
                .find(|o| o.rule == name)
                .expect("rule present")
        };
        assert_eq!(by_name("decisions made").severity, Severity::Ok);
        assert_eq!(by_name("decisions made").value, Some(20.0));
        // p95 of 5..14 is > 10 but < 50 — warn, not fail.
        assert_eq!(by_name("noise p95").severity, Severity::Warn);
        assert_eq!(by_name("no emergencies").severity, Severity::Ok);
        assert_eq!(by_name("solver sane").severity, Severity::Ok);
        assert_eq!(by_name("absent metric").severity, Severity::Warn);
        assert_eq!(by_name("absent metric").note, "metric missing");
        assert_eq!(by_name("absent but fine").severity, Severity::Ok);
        assert_eq!(report.worst(), Severity::Warn);
        assert_eq!(report.count(Severity::Ok), 4);
    }

    #[test]
    fn fail_bounds_dominate_and_gate() {
        let mut rule = Rule::new(
            "gate",
            MetricSelector::parse("counter:engine.decisions").unwrap(),
        );
        rule.fail_below = Some(1e9);
        rule.warn_below = Some(2e9);
        let outcome = rule.evaluate(&sample_stats());
        assert_eq!(outcome.severity, Severity::Fail);
        assert!(outcome.note.contains('<'), "note: {}", outcome.note);
        let report = RuleReport {
            outcomes: vec![outcome],
        };
        assert_eq!(report.worst(), Severity::Fail);
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn evaluation_is_incremental_and_monotone_in_information() {
        // The same rule set evaluated mid-stream and at the end: the
        // mid-stream verdict uses whatever has arrived, no panic, and
        // the final verdict matches a one-shot evaluation.
        let set = RuleSet::from_json(&rules_doc()).unwrap();
        let (tel, sink) = Telemetry::recorder();
        tel.counter("engine.decisions", 1);
        let mut partial = LiveStats::new();
        for event in sink.events() {
            partial.observe_event(&event);
        }
        let early = set.evaluate(&partial);
        // Only the counter rule can resolve yet.
        assert_eq!(early.outcomes[0].severity, Severity::Ok);
        assert_eq!(early.outcomes[1].severity, Severity::Warn); // missing
        let late = set.evaluate(&sample_stats());
        assert_eq!(late, set.evaluate(&sample_stats()));
    }

    #[test]
    fn report_renders_deterministically() {
        let set = RuleSet::from_json(&rules_doc()).unwrap();
        let a = set.evaluate(&sample_stats()).render();
        let b = set.evaluate(&sample_stats()).render();
        assert_eq!(a, b);
        assert!(a.starts_with("rule"), "header first:\n{a}");
        assert!(a.contains("6 rule(s):"), "tally line:\n{a}");
        assert!(a.contains("metric missing"), "notes rendered:\n{a}");
    }

    #[test]
    fn rejects_bad_documents() {
        for (bad, what) in [
            ("not json", "malformed"),
            ("{}", "no schema"),
            (r#"{"schema": "nope", "rules": []}"#, "wrong schema"),
            (
                r#"{"schema": "thermogater.rules/v1"}"#,
                "missing rules array",
            ),
            (
                r#"{"schema": "thermogater.rules/v1", "rules": [{"metric": "events"}]}"#,
                "rule without name",
            ),
            (
                r#"{"schema": "thermogater.rules/v1", "rules": [{"name": "x", "metric": "bogus:y"}]}"#,
                "unknown selector",
            ),
            (
                r#"{"schema": "thermogater.rules/v1", "rules": [{"name": "x", "metric": "events", "fail_above": "much"}]}"#,
                "non-numeric bound",
            ),
            (
                r#"{"schema": "thermogater.rules/v1", "rules": [{"name": "x", "metric": "events", "missing": "maybe"}]}"#,
                "bad missing severity",
            ),
        ] {
            assert!(RuleSet::from_json(bad).is_err(), "{what}");
        }
    }

    #[test]
    fn selector_parsing_round_trips_display() {
        for text in [
            "events",
            "malformed_lines",
            "counter:engine.decisions",
            "p50:x",
            "p95:x",
            "p99:x",
            "mean:x",
            "min:x",
            "max:x",
            "samples:x",
            "emergency_rate",
            "emergency_checks",
            "emergency_mispredicted",
            "gating_churn",
            "gating_churn_per_decision",
            "gating_decisions",
            "solver_iters_p95:thermal.gs",
            "solver_iters_max:thermal.gs",
            "solver_solves:thermal.gs",
            "solver_residual_max:thermal.gs",
        ] {
            let parsed = MetricSelector::parse(text).expect(text);
            assert_eq!(parsed.to_string(), text);
        }
        assert!(MetricSelector::parse("counter:").is_err());
        assert!(MetricSelector::parse("events:x").is_err());
        assert!(MetricSelector::parse("p42:x").is_err());
    }

    #[test]
    fn absent_domain_aggregates_resolve_to_none() {
        let empty = LiveStats::new();
        for selector in [
            "emergency_rate",
            "emergency_checks",
            "gating_churn",
            "gating_decisions",
            "gating_churn_per_decision",
            "solver_solves:thermal.gs",
            "p95:whatever",
            "counter:whatever",
        ] {
            let parsed = MetricSelector::parse(selector).unwrap();
            assert_eq!(parsed.resolve(&empty), None, "{selector}");
        }
        // Structural metrics always resolve.
        assert_eq!(
            MetricSelector::parse("events").unwrap().resolve(&empty),
            Some(0.0)
        );
        assert_eq!(
            MetricSelector::parse("malformed_lines")
                .unwrap()
                .resolve(&empty),
            Some(0.0)
        );
    }

    #[test]
    fn value_formatting_is_stable() {
        assert_eq!(fmt_value(20.0), "20");
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(1e-9), "1e-9");
        assert_eq!(fmt_value(12.25), "12.25");
        assert_eq!(fmt_value(-3.0), "-3");
        assert_eq!(fmt_value(2.5e12), "2500000000000");
    }
}
