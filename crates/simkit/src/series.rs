//! Uniformly sampled time series and multi-channel traces.
//!
//! Power demand, temperature, and voltage-noise histories in this workspace
//! are all uniformly sampled signals. [`TimeSeries`] stores one channel;
//! [`TraceMatrix`] stores one channel per spatial entity (functional unit,
//! regulator, grid cell) sharing a common time base.

use crate::error::{Error, Result};
use crate::units::Seconds;

/// A uniformly sampled scalar signal.
///
/// # Examples
///
/// ```
/// use simkit::{TimeSeries, units::Seconds};
///
/// let mut s = TimeSeries::new(Seconds::from_micros(1.0));
/// s.push(1.0);
/// s.push(3.0);
/// s.push(2.0);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.max(), Some(3.0));
/// assert!((s.mean().unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    dt: Seconds,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sample interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn new(dt: Seconds) -> Self {
        assert!(dt.get() > 0.0, "sample interval must be positive");
        TimeSeries {
            dt,
            values: Vec::new(),
        }
    }

    /// Creates a series from existing samples.
    pub fn from_values(dt: Seconds, values: Vec<f64>) -> Self {
        assert!(dt.get() > 0.0, "sample interval must be positive");
        TimeSeries { dt, values }
    }

    /// Sample interval.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration (`len × dt`).
    pub fn duration(&self) -> Seconds {
        self.dt * self.values.len() as f64
    }

    /// Appends a sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Returns the sample at `index`, if present.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.values.get(index).copied()
    }

    /// The sample covering time `t`, clamped to the series bounds.
    ///
    /// Returns `None` only when the series is empty.
    pub fn at_time(&self, t: Seconds) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let idx = (t.get() / self.dt.get()).floor().max(0.0) as usize;
        Some(self.values[idx.min(self.values.len() - 1)])
    }

    /// All samples as a slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Seconds, f64)> + '_ {
        let dt = self.dt;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (dt * i as f64, v))
    }

    /// Maximum sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Minimum sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Index of the maximum sample, `None` when empty. Ties resolve to the
    /// earliest occurrence.
    pub fn argmax(&self) -> Option<usize> {
        self.values
            .iter()
            .enumerate()
            .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((i, v)),
            })
            .map(|(i, _)| i)
    }

    /// Averages consecutive windows of `factor` samples, producing a series
    /// with `factor×` coarser resolution. A final partial window is averaged
    /// over the samples it actually contains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> Result<TimeSeries> {
        if factor == 0 {
            return Err(Error::invalid_argument("downsample factor must be > 0"));
        }
        let mut out = Vec::with_capacity(self.values.len().div_ceil(factor));
        for chunk in self.values.chunks(factor) {
            out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
        }
        Ok(TimeSeries {
            dt: self.dt * factor as f64,
            values: out,
        })
    }

    /// Extracts `count` windows of `window_len` samples spread evenly over
    /// the series — the VoltSpot-style sampling methodology (Section 5 of
    /// the paper uses 200 windows of 2 K cycles).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when the series is shorter than a
    /// single window or when `count`/`window_len` is zero.
    pub fn sample_windows(&self, count: usize, window_len: usize) -> Result<Vec<&[f64]>> {
        if count == 0 || window_len == 0 {
            return Err(Error::invalid_argument(
                "window count and length must be > 0",
            ));
        }
        if self.values.len() < window_len {
            return Err(Error::invalid_argument(format!(
                "series of {} samples cannot supply windows of {window_len}",
                self.values.len()
            )));
        }
        let span = self.values.len() - window_len;
        let mut out = Vec::with_capacity(count);
        for k in 0..count {
            let start = if count == 1 {
                0
            } else {
                (span as f64 * k as f64 / (count - 1) as f64).round() as usize
            };
            out.push(&self.values[start..start + window_len]);
        }
        Ok(out)
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

/// A set of time-aligned channels: one row per entity, one column per
/// sample instant.
///
/// # Examples
///
/// ```
/// use simkit::series::TraceMatrix;
/// use simkit::units::Seconds;
///
/// let mut m = TraceMatrix::new(2, Seconds::from_micros(1.0));
/// m.push_column(&[1.0, 2.0]).unwrap();
/// m.push_column(&[3.0, 4.0]).unwrap();
/// assert_eq!(m.channel(1), &[2.0, 4.0]);
/// assert_eq!(m.column_sum(1), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMatrix {
    dt: Seconds,
    channels: Vec<Vec<f64>>,
}

impl TraceMatrix {
    /// Creates a matrix with `channel_count` empty channels.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn new(channel_count: usize, dt: Seconds) -> Self {
        assert!(dt.get() > 0.0, "sample interval must be positive");
        TraceMatrix {
            dt,
            channels: vec![Vec::new(); channel_count],
        }
    }

    /// Sample interval shared by all channels.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Number of channels (rows).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of samples per channel (columns).
    pub fn sample_count(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// Appends one sample instant: `values[i]` goes to channel `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `values` does not have one
    /// entry per channel.
    pub fn push_column(&mut self, values: &[f64]) -> Result<()> {
        if values.len() != self.channels.len() {
            return Err(Error::DimensionMismatch {
                expected: self.channels.len(),
                actual: values.len(),
            });
        }
        for (channel, &v) in self.channels.iter_mut().zip(values) {
            channel.push(v);
        }
        Ok(())
    }

    /// Full history of channel `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn channel(&self, index: usize) -> &[f64] {
        &self.channels[index]
    }

    /// Snapshot of every channel at sample `col`.
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of bounds.
    pub fn column(&self, col: usize) -> Vec<f64> {
        self.channels.iter().map(|c| c[col]).collect()
    }

    /// Sum across channels at sample `col` (e.g. total chip power at one
    /// instant).
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of bounds.
    pub fn column_sum(&self, col: usize) -> f64 {
        self.channels.iter().map(|c| c[col]).sum()
    }

    /// The per-instant channel sum as a [`TimeSeries`].
    pub fn total(&self) -> TimeSeries {
        let n = self.sample_count();
        let mut values = Vec::with_capacity(n);
        for col in 0..n {
            values.push(self.column_sum(col));
        }
        TimeSeries::from_values(self.dt, values)
    }

    /// A single channel copied out as a [`TimeSeries`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn channel_series(&self, index: usize) -> TimeSeries {
        TimeSeries::from_values(self.dt, self.channels[index].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::from_values(Seconds::from_micros(1.0), values.to_vec())
    }

    #[test]
    fn basic_statistics() {
        let s = series(&[2.0, -1.0, 5.0, 0.0]);
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.mean(), Some(1.5));
        assert_eq!(s.argmax(), Some(2));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_statistics_are_none() {
        let s = TimeSeries::new(Seconds::from_micros(1.0));
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.argmax(), None);
        assert_eq!(s.at_time(Seconds::ZERO), None);
    }

    #[test]
    fn argmax_ties_resolve_to_first() {
        let s = series(&[1.0, 7.0, 7.0, 3.0]);
        assert_eq!(s.argmax(), Some(1));
    }

    #[test]
    fn at_time_clamps() {
        let s = series(&[10.0, 20.0, 30.0]);
        assert_eq!(s.at_time(Seconds::ZERO), Some(10.0));
        assert_eq!(s.at_time(Seconds::from_micros(1.5)), Some(20.0));
        assert_eq!(s.at_time(Seconds::from_micros(99.0)), Some(30.0));
    }

    #[test]
    fn duration_is_len_times_dt() {
        let s = series(&[0.0; 5]);
        assert!((s.duration().as_micros() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_averages_and_coarsens() {
        let s = series(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = s.downsample(2).unwrap();
        assert_eq!(d.values(), &[2.0, 6.0, 9.0]);
        assert!((d.dt().as_micros() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_zero_errors() {
        assert!(series(&[1.0]).downsample(0).is_err());
    }

    #[test]
    fn sample_windows_spread_evenly() {
        let s = series(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let windows = s.sample_windows(3, 10).unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0][0], 0.0);
        assert_eq!(windows[1][0], 45.0);
        assert_eq!(windows[2][0], 90.0);
        assert!(windows.iter().all(|w| w.len() == 10));
    }

    #[test]
    fn sample_windows_single_window_starts_at_zero() {
        let s = series(&[1.0, 2.0, 3.0]);
        let windows = s.sample_windows(1, 3).unwrap();
        assert_eq!(windows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sample_windows_too_short_errors() {
        let s = series(&[1.0, 2.0]);
        assert!(s.sample_windows(2, 5).is_err());
        assert!(s.sample_windows(0, 1).is_err());
    }

    #[test]
    fn iter_yields_timestamps() {
        let s = series(&[4.0, 5.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert!((pairs[1].0.as_micros() - 1.0).abs() < 1e-12);
        assert_eq!(pairs[1].1, 5.0);
    }

    #[test]
    fn extend_appends() {
        let mut s = TimeSeries::new(Seconds::from_micros(1.0));
        s.extend([1.0, 2.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn trace_matrix_columns_and_totals() {
        let mut m = TraceMatrix::new(3, Seconds::from_micros(1.0));
        m.push_column(&[1.0, 2.0, 3.0]).unwrap();
        m.push_column(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.channel_count(), 3);
        assert_eq!(m.sample_count(), 2);
        assert_eq!(m.column(1), vec![4.0, 5.0, 6.0]);
        assert_eq!(m.column_sum(0), 6.0);
        let total = m.total();
        assert_eq!(total.values(), &[6.0, 15.0]);
        assert_eq!(m.channel_series(2).values(), &[3.0, 6.0]);
    }

    #[test]
    fn trace_matrix_rejects_wrong_width() {
        let mut m = TraceMatrix::new(2, Seconds::from_micros(1.0));
        let err = m.push_column(&[1.0]).unwrap_err();
        assert_eq!(
            err,
            Error::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }
}
