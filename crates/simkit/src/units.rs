//! Zero-cost newtypes for physical quantities.
//!
//! Every inter-crate interface in the workspace exchanges values through
//! these types rather than bare `f64`s, so a power trace cannot be fed where
//! a temperature trace is expected. Each type is a transparent wrapper over
//! `f64` with the arithmetic that makes physical sense for it:
//! same-unit addition/subtraction, scalar scaling, and a ratio operation
//! that yields a plain `f64`.
//!
//! # Examples
//!
//! ```
//! use simkit::units::{Volts, Amps, Watts};
//!
//! let v = Volts::new(1.03);
//! let i = Amps::new(12.0);
//! let p: Watts = v * i;
//! assert!((p.get() - 12.36).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines a transparent `f64` newtype with unit-safe arithmetic.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// Returns the raw value.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Same-unit division produces a dimensionless ratio.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> Self {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> Self {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                $name(value)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Electrical current in amperes.
    Amps,
    "A"
);
unit!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Temperature in degrees Celsius.
    ///
    /// Stored as Celsius because every number the paper reports is in °C;
    /// use [`Celsius::to_kelvin`] when absolute temperature is required
    /// (e.g. in leakage models).
    Celsius,
    "°C"
);
unit!(
    /// Duration in seconds.
    Seconds,
    "s"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Length in meters.
    Meters,
    "m"
);

impl Celsius {
    /// Converts to kelvin.
    #[inline]
    pub fn to_kelvin(self) -> f64 {
        self.get() + 273.15
    }

    /// Builds a temperature from kelvin.
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        Celsius::new(kelvin - 273.15)
    }
}

impl Seconds {
    /// Builds a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// Returns the duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.get() * 1e6
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms * 1e-3)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.get() * 1e3
    }

    /// Builds a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Seconds::new(ns * 1e-9)
    }
}

impl Meters {
    /// Builds a length from millimeters (floorplans are specified in mm).
    #[inline]
    pub fn from_mm(mm: f64) -> Self {
        Meters::new(mm * 1e-3)
    }

    /// Returns the length in millimeters.
    #[inline]
    pub fn as_mm(self) -> f64 {
        self.get() * 1e3
    }

    /// Builds a length from micrometers.
    #[inline]
    pub fn from_um(um: f64) -> Self {
        Meters::new(um * 1e-6)
    }
}

impl Hertz {
    /// Builds a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1e9)
    }

    /// The duration of one cycle at this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the frequency is zero.
    #[inline]
    pub fn period(self) -> Seconds {
        debug_assert!(self.get() > 0.0, "period of zero frequency");
        Seconds::new(1.0 / self.get())
    }
}

/// `P = V × I`
impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

/// `P = I × V`
impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

/// `I = P / V`
impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

/// `V = P / I`
impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.get() / rhs.get())
    }
}

/// `V = I × R`
impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.get() * rhs.get())
    }
}

/// `I = V / R`
impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

/// `E = P × t`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.get() * rhs.get())
    }
}

/// `P = E / t`
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.get() / rhs.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Watts::new(2.0);
        let b = Watts::new(3.0);
        assert_eq!(a + b, Watts::new(5.0));
        assert_eq!(b - a, Watts::new(1.0));
        assert_eq!(a * 2.0, Watts::new(4.0));
        assert_eq!(2.0 * a, Watts::new(4.0));
        assert_eq!(b / a, 1.5);
        assert_eq!(-a, Watts::new(-2.0));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut p = Watts::new(1.0);
        p += Watts::new(2.0);
        assert_eq!(p, Watts::new(3.0));
        p -= Watts::new(0.5);
        assert_eq!(p, Watts::new(2.5));
    }

    #[test]
    fn cross_unit_products() {
        let p = Volts::new(1.0) * Amps::new(5.0);
        assert_eq!(p, Watts::new(5.0));
        let i = Watts::new(10.0) / Volts::new(2.0);
        assert_eq!(i, Amps::new(5.0));
        let v = Amps::new(2.0) * Ohms::new(3.0);
        assert_eq!(v, Volts::new(6.0));
        let e = Watts::new(4.0) * Seconds::new(2.0);
        assert_eq!(e, Joules::new(8.0));
        assert_eq!(e / Seconds::new(2.0), Watts::new(4.0));
    }

    #[test]
    fn kelvin_conversion() {
        let t = Celsius::new(80.0);
        assert!((t.to_kelvin() - 353.15).abs() < 1e-12);
        let back = Celsius::from_kelvin(t.to_kelvin());
        assert!((back.get() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn duration_constructors() {
        assert!((Seconds::from_micros(1500.0).as_millis() - 1.5).abs() < 1e-12);
        assert!((Seconds::from_millis(2.0).get() - 2e-3).abs() < 1e-15);
        assert!((Seconds::from_nanos(250.0).get() - 2.5e-7).abs() < 1e-20);
    }

    #[test]
    fn length_constructors() {
        assert!((Meters::from_mm(21.0).get() - 0.021).abs() < 1e-15);
        assert!((Meters::from_mm(21.0).as_mm() - 21.0).abs() < 1e-12);
        assert!((Meters::from_um(200.0).get() - 2e-4).abs() < 1e-15);
    }

    #[test]
    fn frequency_period() {
        let f = Hertz::from_ghz(4.0);
        assert!((f.period().get() - 0.25e-9).abs() < 1e-20);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.0)]
            .iter()
            .sum();
        assert_eq!(total, Watts::new(6.0));
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{:.2}", Watts::new(1.234)), "1.23 W");
        assert_eq!(format!("{}", Celsius::new(66.0)), "66 °C");
    }

    #[test]
    fn clamp_min_max() {
        let t = Celsius::new(95.0);
        assert_eq!(
            t.clamp(Celsius::new(0.0), Celsius::new(90.0)),
            Celsius::new(90.0)
        );
        assert_eq!(t.max(Celsius::new(100.0)), Celsius::new(100.0));
        assert_eq!(t.min(Celsius::new(90.0)), Celsius::new(90.0));
    }
}
