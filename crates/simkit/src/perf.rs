//! Lightweight wall-clock instrumentation for the simulation hot paths.
//!
//! The engine attributes its runtime to a small set of named phases
//! (trace synthesis, predictor calibration, transient stepping, PDN noise
//! analysis, …) so that optimisation work is measurable in-repo instead
//! of guessed at. A [`Timer`] measures one span; a [`PhaseTimes`]
//! accumulates spans per phase and renders a report table.
//!
//! The accumulator keys phases by `&'static str` and stores them in
//! insertion order in a small vector — no hashing, no allocation per
//! sample, deterministic rendering.
//!
//! # Examples
//!
//! ```
//! use simkit::perf::{PhaseTimes, Timer};
//!
//! let mut phases = PhaseTimes::new();
//! let t = Timer::start();
//! let _work: f64 = (0..100).map(|i| i as f64).sum();
//! phases.add("warmup", t.elapsed_seconds());
//! phases.add("warmup", 0.5);
//! assert_eq!(phases.samples("warmup"), 2);
//! assert!(phases.total_seconds() >= 0.5);
//! ```

use crate::linalg::SolveStats;
use std::time::Instant;

/// A started wall-clock timer; read it with
/// [`elapsed_seconds`](Timer::elapsed_seconds).
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            started: Instant::now(),
        }
    }

    /// Seconds since [`Timer::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Per-phase accumulated wall-clock time.
///
/// Phases appear in the report in the order they were first recorded.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    phases: Vec<(&'static str, f64, u64)>,
}

impl PhaseTimes {
    /// An empty accumulator.
    pub fn new() -> Self {
        PhaseTimes::default()
    }

    /// Adds `seconds` to `phase`, creating the phase on first use.
    pub fn add(&mut self, phase: &'static str, seconds: f64) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _, _)| *name == phase) {
            entry.1 += seconds;
            entry.2 += 1;
        } else {
            self.phases.push((phase, seconds, 1));
        }
    }

    /// Merges another accumulator into this one (summing shared phases).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for &(name, seconds, samples) in &other.phases {
            if let Some(entry) = self.phases.iter_mut().find(|(n, _, _)| *n == name) {
                entry.1 += seconds;
                entry.2 += samples;
            } else {
                self.phases.push((name, seconds, samples));
            }
        }
    }

    /// Accumulated seconds for one phase (0.0 when never recorded).
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(name, _, _)| *name == phase)
            .map_or(0.0, |&(_, s, _)| s)
    }

    /// Number of recorded spans for one phase.
    pub fn samples(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|(name, _, _)| *name == phase)
            .map_or(0, |&(_, _, n)| n)
    }

    /// Sum over all phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|&(_, s, _)| s).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates `(phase, seconds, samples)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.phases.iter().copied()
    }

    /// Renders a fixed-width report table, one line per phase plus a
    /// total, e.g. for `experiments::report` or debug logging.
    pub fn render(&self) -> String {
        let total = self.total_seconds().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>10} {:>9} {:>6}\n",
            "phase", "seconds", "samples", "share"
        ));
        for (name, seconds, samples) in self.iter() {
            out.push_str(&format!(
                "{:<12} {:>10.4} {:>9} {:>5.1}%\n",
                name,
                seconds,
                samples,
                100.0 * seconds / total
            ));
        }
        out.push_str(&format!("{:<12} {:>10.4}\n", "total", self.total_seconds()));
        out
    }
}

/// Aggregate over many iterative solves: count, total iterations, and
/// residual extremes — what the engine accumulates per phase so solver
/// behaviour is visible in results, not dropped on the floor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverAgg {
    /// Number of solves folded in.
    pub solves: u64,
    /// Total iterations (or sweeps) across all solves.
    pub iterations: u64,
    /// Sum of final relative residuals (for the mean).
    pub sum_residual: f64,
    /// Worst (largest) final relative residual seen.
    pub max_residual: f64,
}

impl SolverAgg {
    /// Folds one solve in.
    pub fn record(&mut self, stats: SolveStats) {
        self.solves += 1;
        self.iterations += stats.iterations as u64;
        self.sum_residual += stats.residual;
        self.max_residual = self.max_residual.max(stats.residual);
    }

    /// Merges another aggregate in.
    pub fn merge(&mut self, other: &SolverAgg) {
        self.solves += other.solves;
        self.iterations += other.iterations;
        self.sum_residual += other.sum_residual;
        self.max_residual = self.max_residual.max(other.max_residual);
    }

    /// Mean iterations per solve (0.0 when empty).
    pub fn mean_iterations(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.iterations as f64 / self.solves as f64
        }
    }

    /// Mean final relative residual (0.0 when empty).
    pub fn mean_residual(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.sum_residual / self.solves as f64
        }
    }
}

/// Per-phase [`SolverAgg`] accumulator, keyed like [`PhaseTimes`] by
/// `&'static str` in insertion order.
///
/// # Examples
///
/// ```
/// use simkit::linalg::SolveStats;
/// use simkit::perf::SolverProfile;
///
/// let mut profile = SolverProfile::new();
/// profile.record("transient", SolveStats { iterations: 4, residual: 1e-9 });
/// profile.record("transient", SolveStats { iterations: 6, residual: 2e-9 });
/// let agg = profile.get("transient").unwrap();
/// assert_eq!(agg.solves, 2);
/// assert_eq!(agg.iterations, 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverProfile {
    phases: Vec<(&'static str, SolverAgg)>,
}

impl SolverProfile {
    /// An empty profile.
    pub fn new() -> Self {
        SolverProfile::default()
    }

    /// Folds one solve into `phase`, creating the phase on first use.
    pub fn record(&mut self, phase: &'static str, stats: SolveStats) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| *name == phase) {
            entry.1.record(stats);
        } else {
            let mut agg = SolverAgg::default();
            agg.record(stats);
            self.phases.push((phase, agg));
        }
    }

    /// Merges a pre-aggregated [`SolverAgg`] into `phase`.
    pub fn merge_agg(&mut self, phase: &'static str, agg: &SolverAgg) {
        if agg.solves == 0 {
            return;
        }
        if let Some(entry) = self.phases.iter_mut().find(|(name, _)| *name == phase) {
            entry.1.merge(agg);
        } else {
            self.phases.push((phase, *agg));
        }
    }

    /// Merges another profile in.
    pub fn merge(&mut self, other: &SolverProfile) {
        for (phase, agg) in &other.phases {
            self.merge_agg(phase, agg);
        }
    }

    /// The aggregate for one phase, when any solve was recorded there.
    pub fn get(&self, phase: &str) -> Option<SolverAgg> {
        self.phases
            .iter()
            .find(|(name, _)| *name == phase)
            .map(|(_, agg)| *agg)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates `(phase, aggregate)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, SolverAgg)> + '_ {
        self.phases.iter().copied()
    }

    /// Renders a fixed-width table, one line per phase.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12}\n",
            "phase", "solves", "iters", "iters/sol", "mean resid", "max resid"
        ));
        for (name, agg) in self.iter() {
            out.push_str(&format!(
                "{:<12} {:>8} {:>10} {:>10.1} {:>12.3e} {:>12.3e}\n",
                name,
                agg.solves,
                agg.iterations,
                agg.mean_iterations(),
                agg.mean_residual(),
                agg.max_residual
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonnegative_time() {
        let t = Timer::start();
        assert!(t.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn phases_accumulate_in_insertion_order() {
        let mut p = PhaseTimes::new();
        p.add("transient", 1.0);
        p.add("noise", 0.25);
        p.add("transient", 0.5);
        let order: Vec<&str> = p.iter().map(|(n, _, _)| n).collect();
        assert_eq!(order, ["transient", "noise"]);
        assert!((p.seconds("transient") - 1.5).abs() < 1e-12);
        assert_eq!(p.samples("transient"), 2);
        assert_eq!(p.samples("noise"), 1);
        assert!((p.total_seconds() - 1.75).abs() < 1e-12);
        assert_eq!(p.seconds("absent"), 0.0);
    }

    #[test]
    fn merge_sums_shared_phases_and_appends_new() {
        let mut a = PhaseTimes::new();
        a.add("steady", 2.0);
        let mut b = PhaseTimes::new();
        b.add("steady", 1.0);
        b.add("policy", 0.1);
        a.merge(&b);
        assert!((a.seconds("steady") - 3.0).abs() < 1e-12);
        assert_eq!(a.samples("steady"), 2);
        assert!((a.seconds("policy") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_contains_every_phase_and_total() {
        let mut p = PhaseTimes::new();
        p.add("transient", 0.5);
        p.add("noise", 0.5);
        let table = p.render();
        assert!(table.contains("transient"));
        assert!(table.contains("noise"));
        assert!(table.contains("total"));
        assert!(table.contains("50.0%"));
    }

    #[test]
    fn solver_profile_accumulates_and_merges() {
        let mut a = SolverProfile::new();
        a.record(
            "transient",
            SolveStats {
                iterations: 4,
                residual: 1e-9,
            },
        );
        a.record(
            "transient",
            SolveStats {
                iterations: 8,
                residual: 3e-9,
            },
        );
        a.record(
            "steady",
            SolveStats {
                iterations: 100,
                residual: 1e-11,
            },
        );
        let t = a.get("transient").unwrap();
        assert_eq!(t.solves, 2);
        assert_eq!(t.iterations, 12);
        assert!((t.mean_iterations() - 6.0).abs() < 1e-12);
        assert!((t.mean_residual() - 2e-9).abs() < 1e-21);
        assert_eq!(t.max_residual, 3e-9);
        assert!(a.get("absent").is_none());

        let mut b = SolverProfile::new();
        b.record(
            "transient",
            SolveStats {
                iterations: 2,
                residual: 5e-9,
            },
        );
        b.record(
            "noise",
            SolveStats {
                iterations: 30,
                residual: 1e-10,
            },
        );
        a.merge(&b);
        assert_eq!(a.get("transient").unwrap().solves, 3);
        assert_eq!(a.get("transient").unwrap().max_residual, 5e-9);
        assert_eq!(a.get("noise").unwrap().solves, 1);
        let order: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(order, ["transient", "steady", "noise"]);
        let table = a.render();
        assert!(table.contains("transient"));
        assert!(table.contains("max resid"));
    }

    #[test]
    fn empty_accumulator_renders_header_and_total() {
        let p = PhaseTimes::new();
        assert!(p.is_empty());
        assert_eq!(p.total_seconds(), 0.0);
        let table = p.render();
        assert!(table.contains("phase"));
        assert!(table.contains("total"));
    }
}
