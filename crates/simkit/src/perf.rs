//! Lightweight wall-clock instrumentation for the simulation hot paths.
//!
//! The engine attributes its runtime to a small set of named phases
//! (trace synthesis, predictor calibration, transient stepping, PDN noise
//! analysis, …) so that optimisation work is measurable in-repo instead
//! of guessed at. A [`Timer`] measures one span; a [`PhaseTimes`]
//! accumulates spans per phase and renders a report table.
//!
//! The accumulator keys phases by `&'static str` and stores them in
//! insertion order in a small vector — no hashing, no allocation per
//! sample, deterministic rendering.
//!
//! # Examples
//!
//! ```
//! use simkit::perf::{PhaseTimes, Timer};
//!
//! let mut phases = PhaseTimes::new();
//! let t = Timer::start();
//! let _work: f64 = (0..100).map(|i| i as f64).sum();
//! phases.add("warmup", t.elapsed_seconds());
//! phases.add("warmup", 0.5);
//! assert_eq!(phases.samples("warmup"), 2);
//! assert!(phases.total_seconds() >= 0.5);
//! ```

use std::time::Instant;

/// A started wall-clock timer; read it with
/// [`elapsed_seconds`](Timer::elapsed_seconds).
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            started: Instant::now(),
        }
    }

    /// Seconds since [`Timer::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Per-phase accumulated wall-clock time.
///
/// Phases appear in the report in the order they were first recorded.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    phases: Vec<(&'static str, f64, u64)>,
}

impl PhaseTimes {
    /// An empty accumulator.
    pub fn new() -> Self {
        PhaseTimes::default()
    }

    /// Adds `seconds` to `phase`, creating the phase on first use.
    pub fn add(&mut self, phase: &'static str, seconds: f64) {
        if let Some(entry) = self.phases.iter_mut().find(|(name, _, _)| *name == phase) {
            entry.1 += seconds;
            entry.2 += 1;
        } else {
            self.phases.push((phase, seconds, 1));
        }
    }

    /// Merges another accumulator into this one (summing shared phases).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for &(name, seconds, samples) in &other.phases {
            if let Some(entry) = self.phases.iter_mut().find(|(n, _, _)| *n == name) {
                entry.1 += seconds;
                entry.2 += samples;
            } else {
                self.phases.push((name, seconds, samples));
            }
        }
    }

    /// Accumulated seconds for one phase (0.0 when never recorded).
    pub fn seconds(&self, phase: &str) -> f64 {
        self.phases
            .iter()
            .find(|(name, _, _)| *name == phase)
            .map_or(0.0, |&(_, s, _)| s)
    }

    /// Number of recorded spans for one phase.
    pub fn samples(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|(name, _, _)| *name == phase)
            .map_or(0, |&(_, _, n)| n)
    }

    /// Sum over all phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|&(_, s, _)| s).sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates `(phase, seconds, samples)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64, u64)> + '_ {
        self.phases.iter().copied()
    }

    /// Renders a fixed-width report table, one line per phase plus a
    /// total, e.g. for `experiments::report` or debug logging.
    pub fn render(&self) -> String {
        let total = self.total_seconds().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>10} {:>9} {:>6}\n",
            "phase", "seconds", "samples", "share"
        ));
        for (name, seconds, samples) in self.iter() {
            out.push_str(&format!(
                "{:<12} {:>10.4} {:>9} {:>5.1}%\n",
                name,
                seconds,
                samples,
                100.0 * seconds / total
            ));
        }
        out.push_str(&format!("{:<12} {:>10.4}\n", "total", self.total_seconds()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonnegative_time() {
        let t = Timer::start();
        assert!(t.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn phases_accumulate_in_insertion_order() {
        let mut p = PhaseTimes::new();
        p.add("transient", 1.0);
        p.add("noise", 0.25);
        p.add("transient", 0.5);
        let order: Vec<&str> = p.iter().map(|(n, _, _)| n).collect();
        assert_eq!(order, ["transient", "noise"]);
        assert!((p.seconds("transient") - 1.5).abs() < 1e-12);
        assert_eq!(p.samples("transient"), 2);
        assert_eq!(p.samples("noise"), 1);
        assert!((p.total_seconds() - 1.75).abs() < 1e-12);
        assert_eq!(p.seconds("absent"), 0.0);
    }

    #[test]
    fn merge_sums_shared_phases_and_appends_new() {
        let mut a = PhaseTimes::new();
        a.add("steady", 2.0);
        let mut b = PhaseTimes::new();
        b.add("steady", 1.0);
        b.add("policy", 0.1);
        a.merge(&b);
        assert!((a.seconds("steady") - 3.0).abs() < 1e-12);
        assert_eq!(a.samples("steady"), 2);
        assert!((a.seconds("policy") - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_contains_every_phase_and_total() {
        let mut p = PhaseTimes::new();
        p.add("transient", 0.5);
        p.add("noise", 0.5);
        let table = p.render();
        assert!(table.contains("transient"));
        assert!(table.contains("noise"));
        assert!(table.contains("total"));
        assert!(table.contains("50.0%"));
    }

    #[test]
    fn empty_accumulator_renders_header_and_total() {
        let p = PhaseTimes::new();
        assert!(p.is_empty());
        assert_eq!(p.total_seconds(), 0.0);
        let table = p.render();
        assert!(table.contains("phase"));
        assert!(table.contains("total"));
    }
}
