//! Shared error type for the simulation toolkit.

use std::fmt;

/// Convenience alias for results produced by `simkit` and the crates built
/// on top of it.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the simulation toolkit.
///
/// # Examples
///
/// ```
/// use simkit::Error;
///
/// let err = Error::DimensionMismatch { expected: 4, actual: 3 };
/// assert_eq!(err.to_string(), "dimension mismatch: expected 4, got 3");
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two operands did not have compatible dimensions.
    DimensionMismatch {
        /// Dimension the operation required.
        expected: usize,
        /// Dimension that was actually supplied.
        actual: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NonConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm when iteration stopped.
        residual: f64,
    },
    /// A matrix was structurally or numerically singular.
    SingularMatrix {
        /// Row (or diagonal index) at which singularity was detected.
        index: usize,
    },
    /// A factorization that requires symmetric positive definiteness
    /// encountered a non-positive pivot.
    NotPositiveDefinite {
        /// Diagonal index (in the original, unpermuted numbering) at
        /// which the offending pivot appeared.
        index: usize,
        /// Value of the offending pivot.
        pivot: f64,
    },
    /// An argument was outside its legal range.
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// A lookup table or interpolation domain was empty or malformed.
    EmptyDomain,
}

impl Error {
    /// Builds an [`Error::InvalidArgument`] from anything printable.
    pub fn invalid_argument(reason: impl Into<String>) -> Self {
        Error::InvalidArgument {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::NonConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Error::SingularMatrix { index } => {
                write!(f, "matrix is singular at index {index}")
            }
            Error::NotPositiveDefinite { index, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:.3e} at index {index}"
            ),
            Error::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            Error::EmptyDomain => write!(f, "empty interpolation or lookup domain"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = Error::NonConverged {
            iterations: 100,
            residual: 1e-3,
        };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("converge"));
    }

    #[test]
    fn invalid_argument_builder() {
        let err = Error::invalid_argument("negative area");
        assert_eq!(err.to_string(), "invalid argument: negative area");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(Error::EmptyDomain, Error::EmptyDomain);
        assert_ne!(Error::EmptyDomain, Error::SingularMatrix { index: 0 },);
    }
}
