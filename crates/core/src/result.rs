//! Simulation outputs and the metrics the paper reports.

use crate::policy::PolicyKind;
use floorplan::VrId;
use simkit::perf::{PhaseTimes, SolverProfile};
use simkit::series::{TimeSeries, TraceMatrix};
use simkit::units::{Celsius, Watts};
use vreg::GatingState;
use workload::{Benchmark, WorkloadSpec};

/// One gating decision, as taken at a decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Simulation time of the decision, seconds.
    pub time_s: f64,
    /// The gating state applied until the next decision.
    pub gating: GatingState,
    /// Required active regulators per domain at this decision.
    pub n_on: Vec<usize>,
}

impl DecisionRecord {
    /// Total active regulators across the chip under this decision.
    pub fn active_count(&self) -> usize {
        self.gating.active_count()
    }
}

/// The full outcome of one benchmark × policy co-simulation.
///
/// Construction happens inside
/// [`SimulationEngine::run`](crate::SimulationEngine::run); the accessors
/// expose every metric the paper's tables and figures report.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    pub(crate) spec: WorkloadSpec,
    pub(crate) policy: PolicyKind,
    pub(crate) decisions: Vec<DecisionRecord>,
    /// Chip power demand per thermal step, W.
    pub(crate) total_power: TimeSeries,
    /// Active regulator count per thermal step.
    pub(crate) active_count: TimeSeries,
    /// Demand-driven regulator count per thermal step: how many
    /// regulators pure efficiency gating needs right now.
    pub(crate) required_count: TimeSeries,
    /// Per-VR temperature per thermal step, °C.
    pub(crate) vr_temps: TraceMatrix,
    /// Temporal maximum of the spatial maximum temperature (incl. VR
    /// self-heating), °C.
    pub(crate) max_temperature_c: f64,
    /// Temporal maximum of the spatial thermal gradient, °C.
    pub(crate) max_gradient_c: f64,
    /// Time-averaged effective conversion efficiency (ΣP_out / ΣP_in).
    pub(crate) mean_efficiency: f64,
    /// Time-averaged total regulator conversion loss, W.
    pub(crate) mean_total_vr_loss_w: f64,
    /// Chip-wide maximum noise (percent of Vdd) per analyzed window.
    pub(crate) window_noise_percent: Vec<f64>,
    /// Fraction of analyzed cycles spent in voltage emergencies.
    pub(crate) emergency_cycle_fraction: Option<f64>,
    /// Silicon heat map at the instant of the temporal T_max.
    pub(crate) heatmap_at_tmax: Vec<Vec<f64>>,
    /// Per-cycle noise (% of Vdd) over the worst analyzed window.
    pub(crate) worst_window_trace: Option<Vec<f64>>,
    /// Predictor R² (practical policies only).
    pub(crate) predictor_r_squared: Option<f64>,
    /// Wall-clock seconds per simulation phase.
    pub(crate) perf: PhaseTimes,
    /// Aggregated linear-solver convergence statistics per phase.
    pub(crate) solver_profile: SolverProfile,
}

impl SimulationResult {
    /// The simulated workload (single benchmark or multiprogrammed mix).
    pub fn workload(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The simulated benchmark, for single-program runs.
    ///
    /// # Panics
    ///
    /// Panics for a multiprogrammed run; use
    /// [`SimulationResult::workload`] there.
    pub fn benchmark(&self) -> Benchmark {
        self.spec
            .as_single()
            .expect("benchmark() on a multiprogrammed result; use workload()")
    }

    /// The gating policy used.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// All gating decisions in order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Chip total power demand over time (per thermal step) — the left
    /// axis of Fig. 6.
    pub fn total_power(&self) -> &TimeSeries {
        &self.total_power
    }

    /// Applied active-regulator count over time (step-wise constant per
    /// decision interval under the thermally-aware policies).
    pub fn active_count(&self) -> &TimeSeries {
        &self.active_count
    }

    /// Demand-driven regulator count over time: the cumulative `n_on`
    /// that sustaining peak efficiency requires at each instant — the
    /// right axis of Fig. 6 (Section 6.1's thermally-oblivious gating).
    pub fn required_count(&self) -> &TimeSeries {
        &self.required_count
    }

    /// Mean active-regulator count over the run.
    pub fn mean_active_count(&self) -> f64 {
        self.active_count.mean().unwrap_or(0.0)
    }

    /// Per-regulator temperature histories (°C, per thermal step) — the
    /// Fig. 8 traces.
    pub fn vr_temperatures(&self) -> &TraceMatrix {
        &self.vr_temps
    }

    /// Whether regulator `vr` was on at decision `k`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn was_on(&self, k: usize, vr: VrId) -> bool {
        self.decisions[k].gating.is_on(vr)
    }

    /// Fraction of decisions during which `vr` was on — the Fig. 13
    /// activity metric.
    ///
    /// # Panics
    ///
    /// Panics when `vr` is out of range for the chip.
    pub fn vr_activity_fraction(&self, vr: VrId) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        let on = self.decisions.iter().filter(|d| d.gating.is_on(vr)).count();
        on as f64 / self.decisions.len() as f64
    }

    /// Temporal maximum of the chip-wide maximum temperature — Fig. 9.
    pub fn max_temperature(&self) -> Celsius {
        Celsius::new(self.max_temperature_c)
    }

    /// Temporal maximum of the spatial thermal gradient — Fig. 10.
    pub fn max_gradient(&self) -> f64 {
        self.max_gradient_c
    }

    /// Time-averaged effective conversion efficiency.
    pub fn mean_efficiency(&self) -> f64 {
        self.mean_efficiency
    }

    /// Time-averaged total regulator conversion loss — the quantity whose
    /// savings Fig. 7 reports.
    pub fn mean_total_vr_loss(&self) -> Watts {
        Watts::new(self.mean_total_vr_loss_w)
    }

    /// Maximum voltage noise (percent of Vdd) per analyzed window.
    pub fn window_noise_percent(&self) -> &[f64] {
        &self.window_noise_percent
    }

    /// The overall maximum voltage noise in percent of Vdd — Fig. 11.
    /// `None` when noise was not analyzed (the off-chip baseline).
    pub fn max_noise_percent(&self) -> Option<f64> {
        self.window_noise_percent
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Fraction of analyzed cycles spent in voltage emergencies —
    /// Table 2. `None` when noise was not analyzed.
    pub fn emergency_cycle_fraction(&self) -> Option<f64> {
        self.emergency_cycle_fraction
    }

    /// The silicon heat map at the instant the temporal maximum
    /// temperature occurred — the Fig. 12 frames.
    pub fn heatmap_at_tmax(&self) -> &[Vec<f64>] {
        &self.heatmap_at_tmax
    }

    /// Per-cycle noise (% of Vdd) over the worst analyzed window — the
    /// Fig. 14 traces. `None` when noise was not analyzed.
    pub fn worst_window_trace(&self) -> Option<&[f64]> {
        self.worst_window_trace.as_deref()
    }

    /// The thermal predictor's R² over the run (practical policies).
    pub fn predictor_r_squared(&self) -> Option<f64> {
        self.predictor_r_squared
    }

    /// Wall-clock time spent in each simulation phase (trace synthesis,
    /// calibration, steady-state init, policy decisions, transient
    /// stepping, noise analysis).
    pub fn phase_times(&self) -> &PhaseTimes {
        &self.perf
    }

    /// Aggregated linear-solver convergence statistics, keyed by the
    /// phase that issued the solves: `steady` (the leakage-feedback CG
    /// init), `transient` (per-step Gauss-Seidel), and `noise` (the IR
    /// CG solves behind every analyzed window).
    pub fn solver_profile(&self) -> &SolverProfile {
        &self.solver_profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Seconds;

    fn tiny_result() -> SimulationResult {
        let mut gating = GatingState::all_off(4);
        gating.set(VrId(1), true).unwrap();
        let decisions = vec![
            DecisionRecord {
                time_s: 0.0,
                gating: gating.clone(),
                n_on: vec![1],
            },
            DecisionRecord {
                time_s: 1e-3,
                gating: GatingState::all_on(4),
                n_on: vec![4],
            },
        ];
        SimulationResult {
            spec: WorkloadSpec::Single(Benchmark::Fft),
            policy: PolicyKind::OracT,
            decisions,
            total_power: TimeSeries::from_values(Seconds::from_micros(20.0), vec![50.0, 60.0]),
            active_count: TimeSeries::from_values(Seconds::from_micros(20.0), vec![1.0, 4.0]),
            required_count: TimeSeries::from_values(Seconds::from_micros(20.0), vec![2.0, 3.0]),
            vr_temps: TraceMatrix::new(4, Seconds::from_micros(20.0)),
            max_temperature_c: 71.5,
            max_gradient_c: 12.0,
            mean_efficiency: 0.9,
            mean_total_vr_loss_w: 5.0,
            window_noise_percent: vec![8.0, 12.5, 10.0],
            emergency_cycle_fraction: Some(0.001),
            heatmap_at_tmax: vec![vec![50.0; 2]; 2],
            worst_window_trace: Some(vec![1.0, 2.0]),
            predictor_r_squared: None,
            perf: PhaseTimes::new(),
            solver_profile: SolverProfile::new(),
        }
    }

    #[test]
    fn accessors_roundtrip() {
        let r = tiny_result();
        assert_eq!(r.benchmark(), Benchmark::Fft);
        assert_eq!(r.policy(), PolicyKind::OracT);
        assert_eq!(r.decisions().len(), 2);
        assert_eq!(r.max_temperature(), Celsius::new(71.5));
        assert_eq!(r.max_gradient(), 12.0);
        assert_eq!(r.mean_efficiency(), 0.9);
        assert_eq!(r.mean_total_vr_loss(), Watts::new(5.0));
        assert_eq!(r.max_noise_percent(), Some(12.5));
        assert_eq!(r.emergency_cycle_fraction(), Some(0.001));
        assert_eq!(r.worst_window_trace().unwrap().len(), 2);
        assert!(r.predictor_r_squared().is_none());
    }

    #[test]
    fn vr_activity_fraction_counts_decisions() {
        let r = tiny_result();
        // VR1 on in both decisions; VR0 only in the all-on one.
        assert_eq!(r.vr_activity_fraction(VrId(1)), 1.0);
        assert_eq!(r.vr_activity_fraction(VrId(0)), 0.5);
        assert!(r.was_on(0, VrId(1)));
        assert!(!r.was_on(0, VrId(0)));
    }

    #[test]
    fn mean_active_count_averages_series() {
        let r = tiny_result();
        assert!((r.mean_active_count() - 2.5).abs() < 1e-12);
        assert_eq!(r.decisions()[0].active_count(), 1);
    }
}
