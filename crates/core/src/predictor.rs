//! The practical policies' prediction machinery.
//!
//! * [`ThermalPredictor`] — the linear per-regulator temperature model of
//!   Eqn. 2, `ΔT_i = θ_i · ΔP_i`, with θ extracted from a profiling pass
//!   and accuracy quantified by the coefficient of determination R²
//!   (Eqn. 3). The paper calibrates θ so R² ≈ 0.99.
//! * [`DomainPowerForecaster`] — the weighted-moving-average forecast of
//!   the next interval's power demand from the last three decision
//!   points (after Ardestani et al.).

use simkit::stats::{fit_proportional, r_squared, WeightedMovingAverage};
use simkit::units::Watts;
use simkit::{Error, Result};

/// Per-regulator linear temperature predictor (Eqn. 2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPredictor {
    theta: Vec<f64>,
}

impl ThermalPredictor {
    /// Builds a predictor from explicit θ values (one per regulator).
    pub fn from_thetas(theta: Vec<f64>) -> Self {
        ThermalPredictor { theta }
    }

    /// Calibrates θ per regulator from profiling samples:
    /// `samples[i]` is regulator `i`'s list of observed
    /// `(ΔP watts, ΔT °C)` pairs between consecutive decision points.
    ///
    /// Regulators whose profile shows no power variation (ΣΔP² = 0) get
    /// θ = 0 — prediction degenerates to "temperature stays", which is
    /// exactly right for a regulator that never changed power.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `samples` is empty.
    pub fn calibrate(samples: &[Vec<(f64, f64)>]) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::invalid_argument("no profiling samples"));
        }
        let theta = samples
            .iter()
            .map(|pairs| {
                let dp: Vec<f64> = pairs.iter().map(|&(p, _)| p).collect();
                let dt: Vec<f64> = pairs.iter().map(|&(_, t)| t).collect();
                fit_proportional(&dp, &dt).unwrap_or(0.0)
            })
            .collect();
        Ok(ThermalPredictor { theta })
    }

    /// Number of regulators covered.
    pub fn len(&self) -> usize {
        self.theta.len()
    }

    /// Whether the predictor covers no regulators.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty()
    }

    /// The fitted θ of one regulator (K/W).
    ///
    /// # Panics
    ///
    /// Panics when `vr` is out of range.
    pub fn theta(&self, vr: usize) -> f64 {
        self.theta[vr]
    }

    /// Predicts regulator `vr`'s anticipated temperature:
    /// `T_now + θ·ΔP`, where `ΔP` is the anticipated change in the
    /// regulator's dissipated power until the next decision point.
    ///
    /// # Panics
    ///
    /// Panics when `vr` is out of range.
    pub fn predict(&self, vr: usize, t_now_c: f64, delta_p: Watts) -> f64 {
        t_now_c + self.theta[vr] * delta_p.get()
    }

    /// The R² of this predictor against held-out observations:
    /// `observations[i]` lists regulator `i`'s `(ΔP, observed ΔT)` pairs.
    /// Pools every regulator's predictions into one coefficient, as the
    /// paper's Eqn. 3 sums over all regulators.
    ///
    /// # Errors
    ///
    /// Returns the underlying statistics errors for degenerate inputs
    /// (fewer than two observations, zero variance).
    pub fn r_squared(&self, observations: &[Vec<(f64, f64)>]) -> Result<f64> {
        let mut observed = Vec::new();
        let mut predicted = Vec::new();
        for (vr, pairs) in observations.iter().enumerate() {
            for &(dp, dt) in pairs {
                observed.push(dt);
                predicted.push(self.theta[vr] * dp);
            }
        }
        r_squared(&observed, &predicted)
    }
}

/// WMA-based forecaster of each Vdd-domain's next-interval power demand.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainPowerForecaster {
    windows: Vec<WeightedMovingAverage>,
}

impl DomainPowerForecaster {
    /// A forecaster for `n_domains` domains with the paper's 3-point
    /// history.
    pub fn new(n_domains: usize) -> Self {
        DomainPowerForecaster {
            windows: (0..n_domains)
                .map(|_| WeightedMovingAverage::new(3))
                .collect(),
        }
    }

    /// Records the power demand each domain exhibited over the elapsed
    /// decision interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `demands` does not have one entry per
    /// domain.
    pub fn observe(&mut self, demands: &[Watts]) {
        debug_assert_eq!(demands.len(), self.windows.len());
        for (w, d) in self.windows.iter_mut().zip(demands) {
            w.observe(d.get());
        }
    }

    /// Forecast for one domain; falls back to `fallback` until any
    /// history exists.
    ///
    /// # Panics
    ///
    /// Panics when `domain` is out of range.
    pub fn forecast(&self, domain: usize, fallback: Watts) -> Watts {
        self.windows[domain].forecast().map_or(fallback, Watts::new)
    }

    /// Number of domains tracked.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no domains are tracked.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_recovers_linear_theta() {
        // Two regulators with θ = 3 and θ = 7 plus mild noise.
        let mk = |theta: f64| -> Vec<(f64, f64)> {
            (0..20)
                .map(|i| {
                    let dp = (i as f64 - 10.0) * 0.05;
                    (dp, theta * dp + 0.01 * ((i * 7) % 3) as f64)
                })
                .collect()
        };
        let pred = ThermalPredictor::calibrate(&[mk(3.0), mk(7.0)]).unwrap();
        assert!((pred.theta(0) - 3.0).abs() < 0.1);
        assert!((pred.theta(1) - 7.0).abs() < 0.1);
        assert_eq!(pred.len(), 2);
    }

    #[test]
    fn r_squared_is_high_for_good_fit() {
        let pairs: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let dp = (i as f64 - 25.0) * 0.02;
                (dp, 5.0 * dp)
            })
            .collect();
        let pred = ThermalPredictor::calibrate(std::slice::from_ref(&pairs)).unwrap();
        let r2 = pred.r_squared(&[pairs]).unwrap();
        assert!(r2 > 0.999, "r2 {r2}");
    }

    #[test]
    fn r_squared_degrades_with_wrong_theta() {
        let pairs: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let dp = (i as f64 - 25.0) * 0.02;
                (dp, 5.0 * dp)
            })
            .collect();
        let wrong = ThermalPredictor::from_thetas(vec![1.0]);
        let r2 = wrong.r_squared(&[pairs]).unwrap();
        assert!(r2 < 0.8, "r2 {r2}");
    }

    #[test]
    fn flat_profile_gives_zero_theta() {
        let pred = ThermalPredictor::calibrate(&[vec![(0.0, 0.0); 5]]).unwrap();
        assert_eq!(pred.theta(0), 0.0);
        // Prediction degenerates to "stays at current temperature".
        assert_eq!(pred.predict(0, 61.5, Watts::new(0.3)), 61.5);
    }

    #[test]
    fn empty_calibration_errors() {
        assert!(ThermalPredictor::calibrate(&[]).is_err());
    }

    #[test]
    fn prediction_adds_theta_delta_p() {
        let pred = ThermalPredictor::from_thetas(vec![12.0]);
        let t = pred.predict(0, 60.0, Watts::new(0.25));
        assert!((t - 63.0).abs() < 1e-12);
        // Negative ΔP cools.
        let t = pred.predict(0, 60.0, Watts::new(-0.25));
        assert!((t - 57.0).abs() < 1e-12);
    }

    #[test]
    fn forecaster_tracks_recent_history() {
        let mut f = DomainPowerForecaster::new(2);
        assert_eq!(f.forecast(0, Watts::new(5.0)), Watts::new(5.0));
        f.observe(&[Watts::new(10.0), Watts::new(1.0)]);
        f.observe(&[Watts::new(20.0), Watts::new(1.0)]);
        f.observe(&[Watts::new(30.0), Watts::new(1.0)]);
        // WMA(10,20,30) = 140/6.
        let fc = f.forecast(0, Watts::ZERO);
        assert!((fc.get() - 140.0 / 6.0).abs() < 1e-9);
        assert!((f.forecast(1, Watts::ZERO).get() - 1.0).abs() < 1e-12);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn forecaster_window_is_three_points() {
        let mut f = DomainPowerForecaster::new(1);
        for p in [100.0, 1.0, 2.0, 3.0] {
            f.observe(&[Watts::new(p)]);
        }
        // The 100 W observation has rolled out: WMA(1,2,3) = 14/6.
        let fc = f.forecast(0, Watts::ZERO);
        assert!((fc.get() - 14.0 / 6.0).abs() < 1e-9);
    }
}
