//! The closed-loop co-simulation engine.
//!
//! One [`SimulationEngine::run`] reproduces the paper's evaluation flow
//! for a single benchmark × policy pair:
//!
//! 1. a synthetic SPLASH-2x activity trace drives the calibrated power
//!    model (dynamic + temperature-dependent leakage);
//! 2. each Vdd-domain's regulator bank converts the demand, dissipating
//!    per-regulator conversion loss that is injected — together with the
//!    block powers — into the HotSpot-style transient thermal model;
//! 3. every decision interval (1 ms) the active policy picks which
//!    regulators stay on, constrained to the `n_on` that sustains peak
//!    conversion efficiency;
//! 4. voltage noise is evaluated on sampled 2 K-cycle windows
//!    (VoltSpot methodology), and the `*VT` policies react to (predicted)
//!    voltage emergencies.
//!
//! Initial temperatures come from a leakage-feedback steady-state solve,
//! standing in for the long pre-ROI history the paper's traces carry.
//!
//! ### Oracle fidelity
//!
//! `OracT`'s "temperature each regulator would assume" is computed with
//! the linear ΔT = θ·ΔP model driven by *perfect* inputs (true current
//! temperatures, true next-interval power). The paper validates exactly
//! this linearisation against HotSpot for regulator-sized sources
//! (R² ≈ 0.99, Section 6.3), so the oracle and the practical policy
//! differ only in input quality — sensor delay, demand forecast, and
//! calibration — matching the paper's Orac/Prac design.

use crate::policy::{
    actuation_level, gating_from_rankings, rank_regulators, GovernorConfig, IntegralController,
    PolicyInputs, PolicyKind,
};
use crate::predictor::{DomainPowerForecaster, ThermalPredictor};
use crate::result::{DecisionRecord, SimulationResult};
use crate::sensor::ThermalSensorArray;
use floorplan::{DomainId, Floorplan};
use pdn::transient::{cycles_over, noise_series, TransientParams};
use pdn::{
    EmergencyDetector, EmergencyPredictor, NoiseAnalyzer, PdnConfig, PdnModel, WindowInputs,
};
use power::{PowerModel, TechnologyParams};
use simkit::linalg::SolverBackend;
use simkit::perf::{PhaseTimes, SolverProfile, Timer};
use simkit::series::{TimeSeries, TraceMatrix};
use simkit::telemetry::{EventKind, Telemetry};
use simkit::units::{Seconds, Watts};
use simkit::{DeterministicRng, Result};
use thermal::{FeedbackStats, PowerMap, ThermalConfig, ThermalModel, ThermalState};
use vreg::{GatingState, RegulatorBank, RegulatorDesign};
use workload::microtrace::{generate_window, WARMUP_CYCLES, WINDOW_CYCLES};
use workload::{ActivityTrace, Benchmark, TraceGenerator, WorkloadSpec};

/// Configuration of a co-simulation.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Simulated region-of-interest length.
    pub duration: Seconds,
    /// Gating decision interval (1 ms in the paper).
    pub decision_interval: Seconds,
    /// Thermal integration step; must divide the decision interval.
    pub thermal_step: Seconds,
    /// Thermal sensor + aggregation latency (100 µs in the paper).
    pub sensor_latency: Seconds,
    /// Component regulator design.
    pub design: RegulatorDesign,
    /// Thermal model configuration.
    pub thermal: ThermalConfig,
    /// PDN configuration.
    pub pdn: PdnConfig,
    /// Technology / power-model parameters.
    pub tech: TechnologyParams,
    /// Voltage-emergency predictor accuracy for PracVT (0.9 per the
    /// paper).
    pub predictor_accuracy: f64,
    /// Number of noise windows sampled evenly over the run (the paper
    /// uses 200 per application).
    pub noise_window_count: usize,
    /// Linear-solver family for the thermal and PDN systems. Engine
    /// construction copies this into the thermal and PDN configurations
    /// it instantiates, so one knob steers the whole stack; the
    /// `SIMKIT_SOLVER` environment variable overrides the default.
    pub solver: SolverBackend,
    /// Decision intervals simulated by the θ-calibration profiling pass.
    pub profiling_decisions: usize,
    /// Thermal steps between spatial frames captured into the
    /// telemetry trace by the [`FrameRecorder`](crate::FrameRecorder)
    /// (downsampled heat map, voltage lanes, gating mask, hotspot
    /// track). 0 — the default — disables frame capture entirely: no
    /// recorder is constructed and the event stream is unchanged.
    pub frame_every: usize,
    /// Maximum edge of the downsampled thermal frame (cells per axis).
    pub frame_grid: usize,
    /// Closed-loop governor configuration (setpoints, gain adaptation)
    /// used by the `Integral*` policies; inert for every other policy.
    pub governor: GovernorConfig,
    /// Master seed for every stochastic element.
    pub seed: u64,
}

impl EngineConfig {
    /// The paper-faithful configuration: 20 ms ROI, 1 ms decisions,
    /// 64×64 thermal grid, 200 noise windows, FIVR-like regulators.
    pub fn standard() -> Self {
        EngineConfig {
            duration: Seconds::from_millis(20.0),
            decision_interval: Seconds::from_millis(1.0),
            thermal_step: Seconds::from_micros(20.0),
            sensor_latency: Seconds::from_micros(100.0),
            design: RegulatorDesign::fivr(),
            thermal: ThermalConfig::standard(),
            pdn: PdnConfig::reference(),
            tech: TechnologyParams::table1(),
            predictor_accuracy: 0.9,
            noise_window_count: 200,
            solver: SolverBackend::env_default(),
            profiling_decisions: 10,
            frame_every: 0,
            frame_grid: 16,
            governor: GovernorConfig::standard(),
            seed: 0x7468_6572_6D6F,
        }
    }

    /// A reduced configuration for tests and quick exploration: 6 ms ROI,
    /// 32×32 grid, 12 noise windows.
    pub fn fast() -> Self {
        EngineConfig {
            duration: Seconds::from_millis(6.0),
            thermal: ThermalConfig::coarse(),
            noise_window_count: 12,
            profiling_decisions: 5,
            ..EngineConfig::standard()
        }
    }

    /// Every configuration field as canonical, ordered
    /// `(name, value)` pairs — the substrate of scenario content
    /// hashing. Floats render with `{:e}` (the shortest representation
    /// that parses back to the same bits), so two configs produce the
    /// same pair list iff every field is bit-identical; any change to a
    /// field, however nested (a package resistance, one efficiency-curve
    /// point, the solver backend), changes the list and therefore the
    /// hash built over it.
    pub fn config_fields(&self) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(64);
        for (name, value) in [
            ("duration", self.duration.get()),
            ("decision_interval", self.decision_interval.get()),
            ("thermal_step", self.thermal_step.get()),
            ("sensor_latency", self.sensor_latency.get()),
            ("predictor_accuracy", self.predictor_accuracy),
        ] {
            out.push((name.to_string(), format!("{value:e}")));
        }
        out.push((
            "noise_window_count".to_string(),
            self.noise_window_count.to_string(),
        ));
        out.push(("solver".to_string(), self.solver.name().to_string()));
        out.push((
            "profiling_decisions".to_string(),
            self.profiling_decisions.to_string(),
        ));
        out.push(("frame_every".to_string(), self.frame_every.to_string()));
        out.push(("frame_grid".to_string(), self.frame_grid.to_string()));
        out.push(("seed".to_string(), self.seed.to_string()));
        self.design.config_fields("design.", &mut out);
        self.thermal.config_fields("thermal.", &mut out);
        self.pdn.config_fields("pdn.", &mut out);
        self.tech.config_fields("tech.", &mut out);
        self.governor.config_fields("governor.", &mut out);
        out
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::standard()
    }
}

/// How far past the 10 % threshold a droop travels before the on-line
/// detector's reaction (domain all-on) clips it, as a fraction of Vdd.
const DETECTOR_OVERSHOOT_FRACTION: f64 = 0.03;

/// Emergency cycles that elapse before the detector's reaction takes
/// effect (detection latency + regulator turn-on).
const DETECTOR_REACTION_CYCLES: usize = 30;

/// The co-simulation engine for one chip.
#[derive(Debug)]
pub struct SimulationEngine<'c> {
    chip: &'c Floorplan,
    config: EngineConfig,
    power: PowerModel,
    thermal: ThermalModel,
    pdn: PdnModel,
    banks: Vec<RegulatorBank>,
    analyzer: NoiseAnalyzer,
    telemetry: Telemetry,
    steps_per_decision: usize,
    n_decisions: usize,
}

/// What a per-step observer sees.
struct StepView<'a> {
    step: usize,
    state: &'a ThermalState,
    block_powers: &'a [Watts],
    vr_losses: &'a [f64],
    gating: &'a GatingState,
    solve: simkit::linalg::SolveStats,
}

impl<'c> SimulationEngine<'c> {
    /// Builds the engine: calibrates the power model, discretises the
    /// thermal and PDN networks.
    ///
    /// # Panics
    ///
    /// Panics when the thermal step does not divide the decision
    /// interval, or the duration is not a whole number of decision
    /// intervals.
    pub fn new(chip: &'c Floorplan, config: EngineConfig) -> Self {
        let spd = (config.decision_interval.get() / config.thermal_step.get()).round() as usize;
        assert!(
            spd > 0
                && (config.decision_interval.get() - spd as f64 * config.thermal_step.get()).abs()
                    < 1e-12,
            "thermal step must divide the decision interval"
        );
        let n_decisions = (config.duration.get() / config.decision_interval.get()).round() as usize;
        assert!(
            n_decisions > 0,
            "duration shorter than one decision interval"
        );

        let power = PowerModel::calibrated(chip, config.tech.clone());
        // The engine-level solver choice wins over whatever the thermal /
        // PDN sub-configurations carry, so `EngineConfig::solver` (and
        // `SIMKIT_SOLVER`) steers every linear solve of the run.
        let mut thermal_config = config.thermal.clone();
        thermal_config.solver = config.solver;
        let thermal = ThermalModel::new(chip, thermal_config);
        let mut pdn_config = config.pdn.clone();
        pdn_config.solver = config.solver;
        let pdn = PdnModel::new(chip, pdn_config);
        let banks = chip
            .domains()
            .iter()
            .map(|d| RegulatorBank::new(config.design.clone(), d.vr_count()))
            .collect();
        let analyzer = NoiseAnalyzer::new(config.tech.frequency, config.design.response_time());
        SimulationEngine {
            chip,
            config,
            power,
            thermal,
            pdn,
            banks,
            analyzer,
            telemetry: Telemetry::disabled(),
            steps_per_decision: spd,
            n_decisions,
        }
    }

    /// Installs a telemetry handle for this engine and cascades it into
    /// the thermal model and noise analyzer, so one sink receives the
    /// whole stack's events (engine spans/decisions, thermal solves and
    /// hotspot gauges, PDN IR solves and noise gauges). Must be called
    /// before [`SimulationEngine::run`]; runs started earlier keep the
    /// previous handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.thermal.set_telemetry(telemetry.clone());
        self.analyzer.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The telemetry handle events are emitted through (disabled by
    /// default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The chip this engine simulates.
    pub fn chip(&self) -> &Floorplan {
        self.chip
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The calibrated power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Per-domain regulator banks.
    pub fn banks(&self) -> &[RegulatorBank] {
        &self.banks
    }

    // ------------------------------------------------------------------
    // Trace preparation
    // ------------------------------------------------------------------

    /// Per-thermal-step per-block activities for `n_decisions` intervals.
    fn step_activities(&self, spec: &WorkloadSpec, n_decisions: usize) -> Vec<Vec<f64>> {
        let duration = self.config.decision_interval * n_decisions as f64;
        let trace = TraceGenerator::new(self.chip).generate_spec(spec, duration);
        trace.emit_telemetry(&self.telemetry);
        self.steps_from_trace(&trace, n_decisions)
    }

    /// Resamples any activity trace (synthetic or replayed) into
    /// per-thermal-step block-activity columns. Traces shorter than the
    /// requested horizon clamp to their final sample.
    fn steps_from_trace(&self, trace: &ActivityTrace, n_decisions: usize) -> Vec<Vec<f64>> {
        let total_steps = n_decisions * self.steps_per_decision;
        let samples_per_step = (self.config.thermal_step.get() / trace.dt().get())
            .round()
            .max(1.0) as usize;
        let n_blocks = self.chip.blocks().len();
        let mut out = Vec::with_capacity(total_steps);
        for s in 0..total_steps {
            let lo = (s * samples_per_step).min(trace.sample_count() - 1);
            let hi = ((s + 1) * samples_per_step).min(trace.sample_count());
            let mut col = vec![0.0; n_blocks];
            for (b, slot) in col.iter_mut().enumerate() {
                let ch = trace.activity().channel(b);
                let window = &ch[lo..hi.max(lo + 1)];
                *slot = window.iter().sum::<f64>() / window.len() as f64;
            }
            out.push(col);
        }
        out
    }

    /// Per-block powers for one step's activities at the given state's
    /// temperatures.
    fn block_powers(&self, activities: &[f64], state: &ThermalState) -> Vec<Watts> {
        self.chip
            .blocks()
            .iter()
            .map(|b| {
                let t = state.block_temperature(&self.thermal, b.id());
                self.power.block_power(b.id(), activities[b.id().0], t)
            })
            .collect()
    }

    /// Per-domain demand currents implied by block powers.
    fn domain_currents(&self, block_powers: &[Watts]) -> Vec<f64> {
        let vdd = self.config.tech.vdd;
        self.chip
            .domains()
            .iter()
            .map(|d| {
                let p: Watts = d.blocks().iter().map(|&b| block_powers[b.0]).sum();
                (p / vdd).get()
            })
            .collect()
    }

    /// Mean per-block activity over a span of steps.
    fn mean_activities(acts: &[Vec<f64>], lo: usize, hi: usize) -> Vec<f64> {
        let span = &acts[lo..hi];
        let n_blocks = span[0].len();
        let mut out = vec![0.0; n_blocks];
        for col in span {
            for (o, &a) in out.iter_mut().zip(col) {
                *o += a;
            }
        }
        for o in &mut out {
            *o /= span.len() as f64;
        }
        out
    }

    /// True regulator temperatures (cell + self-heating) for the current
    /// state and per-VR losses.
    fn vr_temperatures(&self, state: &ThermalState, vr_losses: &[f64]) -> Vec<f64> {
        self.chip
            .vr_sites()
            .iter()
            .map(|site| {
                state
                    .vr_temperature(&self.thermal, site.id(), Watts::new(vr_losses[site.id().0]))
                    .get()
            })
            .collect()
    }

    /// Initial thermal state: leakage-feedback steady state at the first
    /// interval's mean activity, regulators `all-on` (the pre-ROI
    /// condition). Also returns the feedback loop's convergence
    /// statistics for the run's solver profile.
    fn initial_state(
        &self,
        acts: &[Vec<f64>],
        with_vr_loss: bool,
    ) -> Result<(ThermalState, FeedbackStats)> {
        let mean_acts = Self::mean_activities(acts, 0, self.steps_per_decision.min(acts.len()));
        let vdd = self.config.tech.vdd;
        let (state, feedback) = self.thermal.steady_state_with_feedback(60, 0.05, |state| {
            let block_powers = self.block_powers(&mean_acts, state);
            let mut pm = PowerMap::new(&self.thermal);
            for b in self.chip.blocks() {
                pm.add_block(b.id(), block_powers[b.id().0])?;
            }
            if with_vr_loss {
                for domain in self.chip.domains() {
                    let demand: Watts = domain.blocks().iter().map(|&b| block_powers[b.0]).sum();
                    let bank = &self.banks[domain.id().0];
                    let n = domain.vr_count();
                    let loss = bank.per_regulator_loss(demand / vdd, n, vdd)?;
                    for &v in domain.vrs() {
                        pm.add_vr(v, loss)?;
                    }
                }
            }
            Ok(pm)
        })?;
        Ok((state, feedback))
    }

    /// Simulates one decision interval under a fixed gating state (the
    /// thermally-aware policies hold their selected set for a full 1 ms
    /// decision interval — Section 6.2), calling `observe` after each
    /// thermal step.
    #[allow(clippy::too_many_arguments)]
    fn simulate_interval<F>(
        &self,
        acts: &[Vec<f64>],
        k: usize,
        gating: &GatingState,
        state: &mut ThermalState,
        stepper: &mut thermal::TransientStepper<'_>,
        vr_losses: &mut [f64],
        mut observe: F,
    ) -> Result<()>
    where
        F: FnMut(StepView<'_>) -> Result<()>,
    {
        let vdd = self.config.tech.vdd;
        let lo = k * self.steps_per_decision;
        for (s, act) in acts
            .iter()
            .enumerate()
            .skip(lo)
            .take(self.steps_per_decision)
        {
            let block_powers = self.block_powers(act, state);
            // Per-VR conversion losses under the current gating.
            vr_losses.iter_mut().for_each(|l| *l = 0.0);
            for domain in self.chip.domains() {
                let active = gating.active_among(domain.vrs());
                if active == 0 {
                    continue; // off-chip baseline: no on-chip loss
                }
                let demand: Watts = domain.blocks().iter().map(|&b| block_powers[b.0]).sum();
                let bank = &self.banks[domain.id().0];
                let loss = bank.per_regulator_loss(demand / vdd, active, vdd)?;
                for &v in domain.vrs() {
                    if gating.is_on(v) {
                        vr_losses[v.0] = loss.get();
                    }
                }
            }
            // Inject heat and advance.
            let mut pm = PowerMap::new(&self.thermal);
            for b in self.chip.blocks() {
                pm.add_block(b.id(), block_powers[b.id().0])?;
            }
            for site in self.chip.vr_sites() {
                let l = vr_losses[site.id().0];
                if l > 0.0 {
                    pm.add_vr(site.id(), Watts::new(l))?;
                }
            }
            let solve = stepper.step(state, &pm)?;
            observe(StepView {
                step: s,
                state,
                block_powers: &block_powers,
                vr_losses,
                gating,
                solve,
            })?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // θ calibration (profiling pass)
    // ------------------------------------------------------------------

    /// Runs the paper's profiling pass: a short simulation with rotating
    /// gating that exercises regulator on/off transitions, fitting the
    /// per-regulator θ of Eqn. 2 and reporting the in-sample R² of
    /// Eqn. 3.
    ///
    /// # Errors
    ///
    /// Propagates solver failures and degenerate-statistics errors.
    pub fn calibrate_predictor(&self, benchmark: Benchmark) -> Result<(ThermalPredictor, f64)> {
        self.calibrate_predictor_spec(&WorkloadSpec::Single(benchmark))
    }

    /// [`SimulationEngine::calibrate_predictor`] for an arbitrary
    /// workload spec (single benchmark or multiprogrammed mix).
    ///
    /// # Errors
    ///
    /// Propagates solver failures and degenerate-statistics errors.
    pub fn calibrate_predictor_spec(&self, spec: &WorkloadSpec) -> Result<(ThermalPredictor, f64)> {
        let n_dec = self.config.profiling_decisions.max(3);
        let acts = self.step_activities(spec, n_dec);
        self.calibrate_predictor_inner(&acts, n_dec)
    }

    /// The profiling pass over prepared step activities (shared by the
    /// synthetic and trace-replay paths).
    fn calibrate_predictor_inner(
        &self,
        acts: &[Vec<f64>],
        n_dec: usize,
    ) -> Result<(ThermalPredictor, f64)> {
        let (mut state, _feedback) = self.initial_state(acts, true)?;
        let mut stepper = self.thermal.stepper(self.config.thermal_step);
        let n_vrs = self.chip.vr_sites().len();
        let mut vr_losses = vec![0.0f64; n_vrs];

        let mut samples: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n_vrs];
        let mut prev_mean_loss = vec![0.0f64; n_vrs];
        let mut have_prev = false;

        for k in 0..n_dec {
            // Rotating active sets: shift the window by 2 slots per
            // decision so every VR sees on→off and off→on transitions.
            let block_powers = self.block_powers(&acts[k * self.steps_per_decision], &state);
            let currents = self.domain_currents(&block_powers);
            let mut gating = GatingState::all_off(n_vrs);
            for domain in self.chip.domains() {
                let bank = &self.banks[domain.id().0];
                let n_on = bank.required_active(simkit::units::Amps::new(currents[domain.id().0]));
                let vrs = domain.vrs();
                for i in 0..n_on.min(vrs.len()) {
                    let idx = (i + 2 * k) % vrs.len();
                    gating.set(vrs[idx], true)?;
                }
            }

            let t_start = self.vr_temperatures(&state, &vr_losses);
            let mut loss_acc = vec![0.0f64; n_vrs];
            let mut steps = 0usize;
            self.simulate_interval(
                acts,
                k,
                &gating,
                &mut state,
                &mut stepper,
                &mut vr_losses,
                |view| {
                    for (acc, &l) in loss_acc.iter_mut().zip(view.vr_losses) {
                        *acc += l;
                    }
                    steps += 1;
                    Ok(())
                },
            )?;
            let mean_loss: Vec<f64> = loss_acc.iter().map(|&l| l / steps as f64).collect();
            let t_end = self.vr_temperatures(&state, &vr_losses);

            if have_prev {
                for v in 0..n_vrs {
                    let dp = mean_loss[v] - prev_mean_loss[v];
                    let dt = t_end[v] - t_start[v];
                    samples[v].push((dp, dt));
                }
            }
            prev_mean_loss = mean_loss;
            have_prev = true;
        }

        let predictor = ThermalPredictor::calibrate(&samples)?;
        let r2 = predictor.r_squared(&samples)?;
        Ok((predictor, r2))
    }

    // ------------------------------------------------------------------
    // Main run
    // ------------------------------------------------------------------

    /// Runs one benchmark under one policy and returns every metric the
    /// paper reports.
    ///
    /// # Errors
    ///
    /// Propagates solver and calibration failures; physical
    /// configurations complete.
    pub fn run(&self, benchmark: Benchmark, policy: PolicyKind) -> Result<SimulationResult> {
        self.run_spec(&WorkloadSpec::Single(benchmark), policy)
    }

    /// [`SimulationEngine::run`] for an arbitrary workload spec —
    /// Section 7's multiprogramming support: each core may run its own
    /// benchmark, and ThermoGater governs every Vdd-domain independently.
    ///
    /// # Errors
    ///
    /// Propagates solver and calibration failures.
    pub fn run_spec(&self, spec: &WorkloadSpec, policy: PolicyKind) -> Result<SimulationResult> {
        let mut perf = PhaseTimes::new();
        let t = Timer::start();
        let span = self.telemetry.span("engine.trace");
        let acts = self.step_activities(spec, self.n_decisions);
        span.finish();
        perf.add("trace", t.elapsed_seconds());
        self.run_inner(spec, &acts, None, policy, perf)
    }

    /// Runs the governor against an externally supplied activity trace
    /// (e.g. replayed from `workload::replay::read_csv`) instead of the
    /// synthetic suite. The trace must carry one channel per floorplan
    /// block; it is resampled onto the engine's thermal steps and clamped
    /// at its end if shorter than the configured duration.
    ///
    /// # Errors
    ///
    /// * [`simkit::Error::DimensionMismatch`] when the trace's channel
    ///   count differs from the chip's block count;
    /// * solver and calibration failures are propagated.
    pub fn run_trace(&self, trace: &ActivityTrace, policy: PolicyKind) -> Result<SimulationResult> {
        if trace.activity().channel_count() != self.chip.blocks().len() {
            return Err(simkit::Error::DimensionMismatch {
                expected: self.chip.blocks().len(),
                actual: trace.activity().channel_count(),
            });
        }
        let mut perf = PhaseTimes::new();
        let t = Timer::start();
        let span = self.telemetry.span("engine.trace");
        trace.emit_telemetry(&self.telemetry);
        let acts = self.steps_from_trace(trace, self.n_decisions);
        // Profile θ on the leading decisions of the same trace.
        let n_dec = self.config.profiling_decisions.max(3).min(self.n_decisions);
        let profiling_acts = self.steps_from_trace(trace, n_dec);
        span.finish();
        perf.add("trace", t.elapsed_seconds());
        let calibration = if policy.uses_thermal_ranking()
            && policy != PolicyKind::Naive
            && !policy.is_closed_loop()
        {
            let t = Timer::start();
            let span = self.telemetry.span("engine.calibrate");
            let cal = self.calibrate_predictor_inner(&profiling_acts, n_dec)?;
            span.finish();
            perf.add("calibrate", t.elapsed_seconds());
            Some(cal)
        } else {
            None
        };
        self.run_inner(trace.spec(), &acts, Some(calibration), policy, perf)
    }

    /// The main loop over prepared step activities. `calibration` is
    /// `None` to let the engine profile θ itself (synthetic path), or
    /// `Some(optional-predictor)` when the caller already decided
    /// (trace-replay path). `perf` carries the caller's already-timed
    /// phases (trace synthesis, possibly calibration) and accumulates the
    /// run's own phases.
    #[allow(clippy::type_complexity)]
    fn run_inner(
        &self,
        spec: &WorkloadSpec,
        acts: &[Vec<f64>],
        calibration: Option<Option<(ThermalPredictor, f64)>>,
        policy: PolicyKind,
        mut perf: PhaseTimes,
    ) -> Result<SimulationResult> {
        let cfg = &self.config;
        let vdd = cfg.tech.vdd;
        let n_vrs = self.chip.vr_sites().len();
        let n_domains = self.chip.domains().len();
        let total_steps = self.n_decisions * self.steps_per_decision;
        // Per-domain di/dt severity: a core domain inherits its own
        // benchmark's character; shared L3/uncore domains see the mix.
        let core_count = self
            .chip
            .domains()
            .iter()
            .filter(|d| d.kind() == floorplan::DomainKind::Core)
            .count();
        let mut next_core = 0usize;
        let domain_didt: Vec<f64> = self
            .chip
            .domains()
            .iter()
            .map(|d| {
                if d.kind() == floorplan::DomainKind::Core {
                    let sev = spec.profile_for_core(next_core).didt_severity;
                    next_core += 1;
                    sev
                } else {
                    spec.mean_didt_severity(core_count)
                }
            })
            .collect();

        // Predictor: practical policies get the profiled θ; thermal
        // oracles drive the same linear model with perfect inputs. The
        // closed-loop governors rank by raw sensed temperatures and need
        // no θ calibration.
        let needs_predictor = policy.uses_thermal_ranking()
            && policy != PolicyKind::Naive
            && !policy.is_closed_loop();
        let (predictor, r_squared) = match calibration {
            Some(Some((p, r2))) => (Some(p), Some(r2)),
            Some(None) => (None, None),
            None if needs_predictor => {
                let t = Timer::start();
                let span = self.telemetry.span("engine.calibrate");
                let (p, r2) = self.calibrate_predictor_spec(spec)?;
                span.finish();
                perf.add("calibrate", t.elapsed_seconds());
                (Some(p), Some(r2))
            }
            None => (None, None),
        };

        let run_span = self.telemetry.span("engine.run");
        let mut solver_profile = SolverProfile::new();
        let t_steady = Timer::start();
        let steady_span = self.telemetry.span("engine.steady");
        let (mut state, steady_fb) = self.initial_state(acts, policy != PolicyKind::OffChip)?;
        steady_span.finish();
        solver_profile.merge_agg("steady", &steady_fb.cg);
        perf.add("steady", t_steady.elapsed_seconds());
        let mut stepper = self.thermal.stepper(cfg.thermal_step);

        let mut vr_losses = vec![0.0f64; n_vrs];
        let mut sensors = ThermalSensorArray::new(n_vrs, cfg.sensor_latency, cfg.thermal_step);
        sensors.record(&self.vr_temperatures(&state, &vr_losses));
        let mut forecaster = DomainPowerForecaster::new(n_domains);
        // Closed-loop governors: one integral controller per domain,
        // stepped once per decision. Absent for every other policy.
        let mut governors: Option<Vec<IntegralController>> = policy.is_closed_loop().then(|| {
            (0..n_domains)
                .map(|_| IntegralController::new(cfg.governor))
                .collect()
        });
        let mut emergency_predictor =
            EmergencyPredictor::new(cfg.predictor_accuracy, cfg.seed ^ spec.seed());
        let detector = EmergencyDetector::new();
        let mut noise_rng = DeterministicRng::new(cfg.seed ^ spec.seed() ^ 0x4E01);

        // Noise windows, evenly spread over the run.
        let analyze_noise = policy != PolicyKind::OffChip;
        let window_steps: Vec<usize> = (0..cfg.noise_window_count)
            .map(|w| {
                ((w as f64 + 0.5) / cfg.noise_window_count as f64 * total_steps as f64) as usize
            })
            .collect();

        // Metric accumulators.
        let mut decisions: Vec<DecisionRecord> = Vec::with_capacity(self.n_decisions);
        let mut total_power = TimeSeries::new(cfg.thermal_step);
        let mut active_count = TimeSeries::new(cfg.thermal_step);
        let mut required_count = TimeSeries::new(cfg.thermal_step);
        let mut vr_temps = TraceMatrix::new(n_vrs, cfg.thermal_step);
        let mut max_t = f64::MIN;
        let mut max_gradient = f64::MIN;
        let mut heatmap_at_tmax = state.heatmap();
        let mut pout_acc = 0.0f64;
        let mut pin_acc = 0.0f64;
        let mut loss_acc = 0.0f64;
        let mut window_noise = Vec::new();
        let mut emergency_cycles = 0usize;
        let mut analyzed_cycles = 0usize;
        let mut worst_window: Option<(f64, Vec<f64>)> = None;
        // Noise analysis runs interleaved with the policy and transient
        // phases; it accumulates here and is subtracted from whichever
        // phase hosted it so the report attributes time where it is spent.
        let mut noise_secs = 0.0f64;

        // Spatial frame capture (heat-map / lane / hotspot Frame
        // events): only built when telemetry is live AND frames were
        // requested, so the disabled path costs one `is_none` branch.
        let mut frame_recorder = if self.telemetry.is_enabled() && cfg.frame_every > 0 {
            Some(crate::FrameRecorder::new(
                self.telemetry.clone(),
                cfg.frame_every,
                cfg.frame_grid,
                cfg.thermal_step,
            ))
        } else {
            None
        };
        // Per-domain supply lanes: Vdd scaled by the most recent
        // measured droop fraction, held between noise windows.
        let mut lane_voltages = vec![vdd.get(); n_domains];

        for k in 0..self.n_decisions {
            let noise_at_decide = noise_secs;
            let t_decide = Timer::start();
            let step0 = k * self.steps_per_decision;
            // --- Demand views -----------------------------------------
            let block_powers_now = self.block_powers(&acts[step0], &state);
            let currents_now = self.domain_currents(&block_powers_now);
            let next_mean_acts =
                Self::mean_activities(acts, step0, step0 + self.steps_per_decision);
            let block_powers_next = self.block_powers(&next_mean_acts, &state);
            let currents_next = self.domain_currents(&block_powers_next);

            // --- n_on per domain --------------------------------------
            let mut n_on: Vec<usize> = self
                .chip
                .domains()
                .iter()
                .map(|d| {
                    let bank = &self.banks[d.id().0];
                    let demand = if policy.is_practical() {
                        let fallback = Watts::new(currents_now[d.id().0] * vdd.get());
                        forecaster.forecast(d.id().0, fallback) / vdd
                    } else if policy.is_oracular() {
                        simkit::units::Amps::new(currents_next[d.id().0])
                    } else {
                        simkit::units::Amps::new(currents_now[d.id().0])
                    };
                    bank.required_active(demand)
                })
                .collect();

            // --- Closed-loop governor override ------------------------
            // The efficiency `n_on` becomes the *floor*; each domain's
            // integral controller spends its remaining cap headroom on
            // extra active regulators (u = 0 → floor, u = 1 → all on).
            if let Some(ctls) = governors.as_mut() {
                let sensed = sensors.read();
                let mut u_sum = 0.0f64;
                let mut gain_sum = 0.0f64;
                let mut max_abs_error = 0.0f64;
                for (d, domain) in self.chip.domains().iter().enumerate() {
                    let (setpoint, measurement) = if policy == PolicyKind::IntegralT {
                        // Hottest sensed VR of the domain.
                        let hottest = domain
                            .vrs()
                            .iter()
                            .map(|&v| sensed[v.0])
                            .fold(f64::MIN, f64::max);
                        (cfg.governor.temp_setpoint_c, hottest)
                    } else {
                        // Delivered power: load plus the conversion loss
                        // of the previously applied active set.
                        let prev_active = match decisions.last() {
                            Some(prev) => prev.gating.active_among(domain.vrs()).max(1),
                            None => domain.vr_count(),
                        };
                        let load = currents_now[d] * vdd.get();
                        let loss = if currents_now[d] > 0.0 {
                            self.banks[d]
                                .total_loss(
                                    simkit::units::Amps::new(currents_now[d]),
                                    prev_active,
                                    vdd,
                                )?
                                .get()
                        } else {
                            0.0
                        };
                        (cfg.governor.power_cap_w, load + loss)
                    };
                    let u = ctls[d].step(setpoint, measurement);
                    n_on[d] = actuation_level(u, n_on[d], domain.vr_count());
                    u_sum += u;
                    gain_sum += ctls[d].gain();
                    max_abs_error = max_abs_error.max((setpoint - measurement).abs());
                }
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .event(EventKind::Gauge, "engine.governor")
                        .field_u64("decision", k as u64)
                        // The rollup value is the mean control output;
                        // gain and tracking error ride along as fields.
                        .field_f64("value", u_sum / n_domains as f64)
                        .field_f64("mean_gain", gain_sum / n_domains as f64)
                        .field_f64("max_abs_error", max_abs_error)
                        .emit();
                }
            }

            // --- Thermal ranking inputs -------------------------------
            let true_temps = self.vr_temperatures(&state, &vr_losses);
            let vr_temp_rank: Vec<f64> = match policy {
                PolicyKind::Naive => true_temps.clone(),
                PolicyKind::OracT | PolicyKind::OracVT => {
                    let p = predictor.as_ref().expect("oracle predictor");
                    self.anticipated_temps(&true_temps, p, &currents_next, &n_on, &vr_losses)
                }
                PolicyKind::PracT | PolicyKind::PracVT => {
                    let p = predictor.as_ref().expect("practical predictor");
                    let sensed = sensors.read();
                    let forecast: Vec<f64> = (0..n_domains)
                        .map(|d| {
                            let fallback = Watts::new(currents_now[d] * vdd.get());
                            (forecaster.forecast(d, fallback) / vdd).get()
                        })
                        .collect();
                    self.anticipated_temps(&sensed, p, &forecast, &n_on, &vr_losses)
                }
                // Closed-loop governors rank by the same delayed sensor
                // readings their controllers measure — no predictor.
                PolicyKind::IntegralT | PolicyKind::IntegralP => sensors.read(),
                _ => true_temps.clone(),
            };

            // --- Noise ranking inputs ---------------------------------
            let vr_noise_score: Vec<f64> = if policy.uses_noise_ranking() {
                let mut scores = vec![0.0; n_vrs];
                for d in self.chip.domains() {
                    for (v, s) in self.pdn.vr_load_proximity(d.id(), &block_powers_next) {
                        scores[v.0] = s;
                    }
                }
                scores
            } else {
                vec![0.0; n_vrs]
            };

            // --- Measurement windows of this interval -----------------
            // Pre-generated before the decision so that (a) the window
            // stream is identical across policies (one benchmark = one
            // set of sampled windows, as in the paper's methodology) and
            // (b) the VT policies' oracle judges the *same* windows that
            // will be measured.
            let interval_windows: Vec<(usize, Vec<Vec<f64>>)> = window_steps
                .iter()
                .copied()
                .filter(|&s| s >= step0 && s < step0 + self.steps_per_decision)
                .map(|s| {
                    (
                        s,
                        self.domain_windows(&acts[s], &domain_didt, &mut noise_rng),
                    )
                })
                .collect();

            // --- Decide ------------------------------------------------
            let no_emergency = vec![false; n_domains];
            let inputs = PolicyInputs {
                chip: self.chip,
                n_on: &n_on,
                vr_temp_rank: &vr_temp_rank,
                vr_noise_score: &vr_noise_score,
                emergency: &no_emergency,
            };
            let rankings = rank_regulators(policy, &inputs)?;
            let mut applied_emergency = vec![false; n_domains];
            let mut gating =
                gating_from_rankings(policy, self.chip, &rankings, &n_on, &applied_emergency)?;
            if policy.reacts_to_emergencies() && !interval_windows.is_empty() {
                // Ground truth: would the planned gating put any domain
                // over the emergency threshold during this interval's
                // measurement windows?
                let t_truth = Timer::start();
                let mut truth = vec![false; n_domains];
                for (_, mults) in &interval_windows {
                    let report = self.analyzer.analyze(
                        self.chip,
                        &self.pdn,
                        &gating,
                        &WindowInputs {
                            block_powers: &block_powers_next,
                            domain_multipliers: mults,
                            warmup: WARMUP_CYCLES,
                        },
                    )?;
                    solver_profile.merge_agg("noise", &report.ir_solve_stats());
                    for (d, flag) in truth.iter_mut().enumerate() {
                        *flag |=
                            report.domain_fraction(DomainId(d)) > detector.threshold_fraction();
                    }
                }
                noise_secs += t_truth.elapsed_seconds();
                let truth_count = truth.iter().filter(|&&t| t).count();
                let (emergency_flags, mispredicted) = if policy.is_oracular() {
                    (truth, 0usize)
                } else {
                    let mut wrong = 0usize;
                    let flags: Vec<bool> = truth
                        .iter()
                        .map(|&t| {
                            let p = emergency_predictor.predict(t);
                            if p != t {
                                wrong += 1;
                            }
                            p
                        })
                        .collect();
                    (flags, wrong)
                };
                let flagged = emergency_flags.iter().filter(|&&e| e).count();
                if flagged > 0 {
                    gating = gating_from_rankings(
                        policy,
                        self.chip,
                        &rankings,
                        &n_on,
                        &emergency_flags,
                    )?;
                }
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .event(EventKind::Emergency, "engine.emergency_check")
                        .field_u64("decision", k as u64)
                        .field_u64("windows", interval_windows.len() as u64)
                        .field_u64("true_domains", truth_count as u64)
                        .field_u64("flagged_domains", flagged as u64)
                        .field_u64("mispredicted", mispredicted as u64)
                        .field_bool("predicted", !policy.is_oracular())
                        .emit();
                    if mispredicted > 0 {
                        self.telemetry
                            .counter("engine.emergency_mispredict", mispredicted as u64);
                    }
                }
                applied_emergency = emergency_flags;
            }
            if self.telemetry.is_enabled() {
                // Active-VR set change versus the previous decision (the
                // pre-ROI baseline for the first one: all-on, or all-off
                // under the off-chip policy).
                let (turned_on, turned_off) = match decisions.last() {
                    Some(prev) => gating.diff_counts(&prev.gating)?,
                    None if policy == PolicyKind::OffChip => {
                        gating.diff_counts(&GatingState::all_off(n_vrs))?
                    }
                    None => gating.diff_counts(&GatingState::all_on(n_vrs))?,
                };
                self.telemetry
                    .event(EventKind::Gating, "engine.gating")
                    .field_u64("decision", k as u64)
                    .field_u64("active", gating.active_count() as u64)
                    .field_u64("turned_on", turned_on as u64)
                    .field_u64("turned_off", turned_off as u64)
                    .emit();
                self.telemetry.counter("engine.decisions", 1);
                self.telemetry
                    .counter("engine.steps", self.steps_per_decision as u64);
                // Progress heartbeat: lets a live watcher (`tg-obs
                // watch`) see how far along the run is. Every field is
                // a pure function of the decision index, so heartbeats
                // never perturb cross-run trace determinism.
                self.telemetry
                    .event(EventKind::Progress, "engine.heartbeat")
                    .field_u64("decision", k as u64)
                    .field_u64("decisions", self.n_decisions as u64)
                    .field_u64("steps_done", ((k + 1) * self.steps_per_decision) as u64)
                    .field_f64("frac", (k + 1) as f64 / self.n_decisions as f64)
                    .emit();
            }
            decisions.push(DecisionRecord {
                time_s: k as f64 * cfg.decision_interval.get(),
                gating: gating.clone(),
                n_on: n_on.clone(),
            });
            perf.add(
                "policy",
                t_decide.elapsed_seconds() - (noise_secs - noise_at_decide),
            );

            // --- Simulate the interval --------------------------------
            let noise_at_step = noise_secs;
            let t_step = Timer::start();
            let mut interval_domain_power = vec![0.0f64; n_domains];
            self.simulate_interval(
                acts,
                k,
                &gating,
                &mut state,
                &mut stepper,
                &mut vr_losses,
                |view| {
                    solver_profile.record("transient", view.solve);
                    // Power + efficiency accounting.
                    let chip_power: f64 = view.block_powers.iter().map(|p| p.get()).sum();
                    total_power.push(chip_power);
                    active_count.push(view.gating.active_count() as f64);
                    // Demand-driven count: how many regulators pure
                    // (thermally-oblivious) efficiency gating would keep
                    // on right now — Section 6.1 / Fig. 6.
                    let required: usize = self
                        .chip
                        .domains()
                        .iter()
                        .map(|domain| {
                            let p: Watts = domain
                                .blocks()
                                .iter()
                                .map(|&b| view.block_powers[b.0])
                                .sum();
                            self.banks[domain.id().0].required_active(p / vdd)
                        })
                        .sum();
                    required_count.push(required as f64);
                    let mut step_loss = 0.0;
                    for (d, domain) in self.chip.domains().iter().enumerate() {
                        let p: f64 = domain
                            .blocks()
                            .iter()
                            .map(|&b| view.block_powers[b.0].get())
                            .sum();
                        interval_domain_power[d] += p;
                        pout_acc += p;
                        let domain_loss: f64 =
                            domain.vrs().iter().map(|&v| view.vr_losses[v.0]).sum();
                        step_loss += domain_loss;
                        pin_acc += p + domain_loss;
                    }
                    loss_acc += step_loss;

                    // Thermal accounting (silicon + regulator hotspots).
                    let temps = self.vr_temperatures(view.state, view.vr_losses);
                    sensors.record(&temps);
                    vr_temps.push_column(&temps)?;
                    let si_max = view.state.max_silicon().get();
                    let vr_max = temps.iter().copied().fold(f64::MIN, f64::max);
                    let t_max = si_max.max(vr_max);
                    if t_max > max_t {
                        max_t = t_max;
                        heatmap_at_tmax = view.state.heatmap();
                    }
                    let gradient = t_max - view.state.min_silicon().get();
                    max_gradient = max_gradient.max(gradient);

                    // Noise windows.
                    let window_here = if analyze_noise {
                        interval_windows
                            .iter()
                            .find(|&&(s, _)| s == view.step)
                            .map(|(_, m)| m)
                    } else {
                        None
                    };
                    if let Some(mults) = window_here {
                        let mults: &Vec<Vec<f64>> = mults;
                        let t_noise = Timer::start();
                        let report = self.analyzer.analyze(
                            self.chip,
                            &self.pdn,
                            view.gating,
                            &WindowInputs {
                                block_powers: view.block_powers,
                                domain_multipliers: mults,
                                warmup: WARMUP_CYCLES,
                            },
                        )?;
                        solver_profile.merge_agg("noise", &report.ir_solve_stats());
                        // Per-domain fractions, with the VT policies'
                        // detector backstop: a droop the predictor missed
                        // is still caught by the on-line detector within
                        // a ring period, clipping the excursion shortly
                        // past the threshold.
                        let threshold = detector.threshold_fraction();
                        let backstop = policy.reacts_to_emergencies();
                        let fractions: Vec<f64> = (0..n_domains)
                            .map(|d| {
                                let f = report.domain_fraction(DomainId(d));
                                if backstop && !applied_emergency[d] && f > threshold {
                                    f.min(threshold + DETECTOR_OVERSHOOT_FRACTION)
                                } else {
                                    f
                                }
                            })
                            .collect();
                        for (lane, fraction) in lane_voltages.iter_mut().zip(&fractions) {
                            *lane = vdd.get() * (1.0 - fraction);
                        }
                        let pct = fractions.iter().copied().fold(0.0f64, f64::max) * 100.0;
                        window_noise.push(pct);
                        self.telemetry.histogram("engine.window_noise_pct", pct);

                        // Emergency residency (Table 2) + worst trace
                        // (Fig. 14). The analyzer's report carries the
                        // static IR component, so no second grid solve.
                        let mut window_emergency_cycles = 0usize;
                        for (d, domain) in self.chip.domains().iter().enumerate() {
                            let params =
                                self.transient_params(domain, view.gating, view.block_powers);
                            let mut over = cycles_over(
                                &cfg.pdn,
                                &params,
                                &mults[d],
                                WARMUP_CYCLES,
                                report.domain_ir_fraction(DomainId(d)),
                                threshold,
                            );
                            if backstop && !applied_emergency[d] {
                                // Detector reaction truncates the
                                // emergency after detection latency.
                                over = over.min(DETECTOR_REACTION_CYCLES);
                            }
                            window_emergency_cycles = window_emergency_cycles.max(over);
                        }
                        emergency_cycles += window_emergency_cycles;
                        analyzed_cycles += WINDOW_CYCLES - WARMUP_CYCLES;

                        if worst_window.as_ref().is_none_or(|(best, _)| pct > *best) {
                            // Record the worst domain's per-cycle trace.
                            let worst_domain = (0..n_domains)
                                .max_by(|&a, &b| {
                                    fractions[a]
                                        .partial_cmp(&fractions[b])
                                        .expect("finite noise")
                                })
                                .expect("at least one domain");
                            let params = self.transient_params(
                                &self.chip.domains()[worst_domain],
                                view.gating,
                                view.block_powers,
                            );
                            let trace: Vec<f64> = noise_series(
                                &cfg.pdn,
                                &params,
                                &mults[worst_domain],
                                WARMUP_CYCLES,
                            )
                            .into_iter()
                            .map(|t| {
                                (t + report.domain_ir_fraction(DomainId(worst_domain))) * 100.0
                            })
                            .collect();
                            worst_window = Some((pct, trace));
                        }
                        noise_secs += t_noise.elapsed_seconds();
                    }

                    if let Some(recorder) = frame_recorder.as_mut() {
                        recorder.observe(view.step, view.state, view.gating, &lane_voltages);
                    }
                    Ok(())
                },
            )?;
            perf.add(
                "transient",
                t_step.elapsed_seconds() - (noise_secs - noise_at_step),
            );
            if self.telemetry.is_enabled() && policy.is_practical() {
                // Demand-forecast error: what the policy believed each
                // domain would draw versus what the interval delivered.
                for (d, &p) in interval_domain_power.iter().enumerate() {
                    let actual = p / self.steps_per_decision as f64;
                    let fallback = Watts::new(currents_now[d] * vdd.get());
                    let forecast = forecaster.forecast(d, fallback).get();
                    self.telemetry
                        .histogram("engine.forecast_error_w", (forecast - actual).abs());
                }
            }
            forecaster.observe(
                &interval_domain_power
                    .iter()
                    .map(|&p| Watts::new(p / self.steps_per_decision as f64))
                    .collect::<Vec<_>>(),
            );
        }

        if noise_secs > 0.0 {
            perf.add("noise", noise_secs);
        }
        if let Some(recorder) = frame_recorder {
            recorder.finish();
        }
        run_span.finish();

        let steps_f = total_steps as f64;
        Ok(SimulationResult {
            spec: spec.clone(),
            policy,
            decisions,
            total_power,
            active_count,
            required_count,
            vr_temps,
            max_temperature_c: max_t,
            max_gradient_c: max_gradient,
            mean_efficiency: if pin_acc > 0.0 {
                pout_acc / pin_acc
            } else {
                1.0
            },
            mean_total_vr_loss_w: loss_acc / steps_f,
            window_noise_percent: window_noise,
            emergency_cycle_fraction: if analyzed_cycles > 0 {
                Some(emergency_cycles as f64 / analyzed_cycles as f64)
            } else {
                None
            },
            heatmap_at_tmax,
            worst_window_trace: worst_window.map(|(_, trace)| trace),
            predictor_r_squared: r_squared,
            perf,
            solver_profile,
        })
    }

    /// Anticipated per-VR temperatures via the ΔT = θ·ΔP model:
    /// `base_temps` are the temperatures visible to the policy,
    /// `domain_currents` the (forecast or true) next-interval demand.
    fn anticipated_temps(
        &self,
        base_temps: &[f64],
        predictor: &ThermalPredictor,
        domain_currents: &[f64],
        n_on: &[usize],
        current_losses: &[f64],
    ) -> Vec<f64> {
        let vdd = self.config.tech.vdd;
        let mut out = base_temps.to_vec();
        for domain in self.chip.domains() {
            let d = domain.id().0;
            let bank = &self.banks[d];
            let share = n_on[d].clamp(1, domain.vr_count());
            let loss_if_on = bank
                .per_regulator_loss(simkit::units::Amps::new(domain_currents[d]), share, vdd)
                .map(|w| w.get())
                .unwrap_or(0.0);
            for &v in domain.vrs() {
                let dp = loss_if_on - current_losses[v.0];
                out[v.0] = predictor.predict(v.0, base_temps[v.0], Watts::new(dp));
            }
        }
        out
    }

    /// Generates the per-domain cycle windows for one noise evaluation.
    /// `didt_severity` is indexed by domain, so multiprogrammed mixes
    /// give each core domain its own benchmark's di/dt character.
    fn domain_windows(
        &self,
        activities: &[f64],
        didt_severity: &[f64],
        rng: &mut DeterministicRng,
    ) -> Vec<Vec<f64>> {
        self.chip
            .domains()
            .iter()
            .map(|domain| {
                let mean_act = domain
                    .blocks()
                    .iter()
                    .map(|&b| activities[b.0])
                    .sum::<f64>()
                    / domain.blocks().len() as f64;
                generate_window(rng, WINDOW_CYCLES, mean_act, didt_severity[domain.id().0])
                    .multipliers()
                    .to_vec()
            })
            .collect()
    }

    /// Transient parameters of one domain under the current gating.
    fn transient_params(
        &self,
        domain: &floorplan::VddDomain,
        gating: &GatingState,
        block_powers: &[Watts],
    ) -> TransientParams {
        let vdd = self.config.tech.vdd;
        let mean_current = domain
            .blocks()
            .iter()
            .map(|&b| block_powers[b.0])
            .sum::<Watts>()
            / vdd;
        TransientParams {
            mean_current,
            n_active: gating.active_among(domain.vrs()).max(1),
            n_total: domain.vr_count(),
            distance_factor: self
                .pdn
                .active_distance_factor(domain.id(), gating, block_powers),
            response_time: self.config.design.response_time(),
            frequency: self.config.tech.frequency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;

    fn tiny_config() -> EngineConfig {
        EngineConfig {
            duration: Seconds::from_millis(3.0),
            noise_window_count: 4,
            profiling_decisions: 4,
            thermal: ThermalConfig::coarse(),
            ..EngineConfig::standard()
        }
    }

    #[test]
    fn all_on_run_produces_sane_metrics() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let r = engine.run(Benchmark::LuNcb, PolicyKind::AllOn).unwrap();
        assert_eq!(r.decisions().len(), 3);
        assert_eq!(r.total_power().len(), 150);
        let t = r.max_temperature().get();
        assert!(t > 45.0 && t < 120.0, "T_max {t}");
        assert!(r.max_gradient() > 0.0);
        assert!(r.mean_efficiency() > 0.5 && r.mean_efficiency() < 1.0);
        assert!(r.mean_total_vr_loss().get() > 0.0);
        assert!(r.max_noise_percent().is_some());
        assert_eq!(r.decisions()[0].active_count(), 96);
    }

    #[test]
    fn off_chip_has_no_vr_loss_or_noise() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let r = engine.run(Benchmark::Volrend, PolicyKind::OffChip).unwrap();
        assert_eq!(r.mean_total_vr_loss(), Watts::ZERO);
        assert!(r.max_noise_percent().is_none());
        assert!(r.emergency_cycle_fraction().is_none());
        assert_eq!(r.mean_active_count(), 0.0);
        assert_eq!(r.mean_efficiency(), 1.0);
    }

    #[test]
    fn gating_reduces_loss_versus_all_on() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let all_on = engine.run(Benchmark::Raytrace, PolicyKind::AllOn).unwrap();
        let gated = engine.run(Benchmark::Raytrace, PolicyKind::Naive).unwrap();
        assert!(
            gated.mean_total_vr_loss().get() < all_on.mean_total_vr_loss().get(),
            "gated {} vs all-on {}",
            gated.mean_total_vr_loss(),
            all_on.mean_total_vr_loss()
        );
        // Gating keeps (near-)peak efficiency, all-on drifts below.
        assert!(gated.mean_efficiency() > all_on.mean_efficiency());
    }

    #[test]
    fn active_count_tracks_demand() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let heavy = engine.run(Benchmark::Cholesky, PolicyKind::OracT).unwrap();
        let light = engine.run(Benchmark::Raytrace, PolicyKind::OracT).unwrap();
        assert!(
            heavy.mean_active_count() > light.mean_active_count() + 10.0,
            "heavy {} vs light {}",
            heavy.mean_active_count(),
            light.mean_active_count()
        );
    }

    #[test]
    fn practical_policy_reports_r_squared() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let r = engine.run(Benchmark::Barnes, PolicyKind::PracT).unwrap();
        let r2 = r
            .predictor_r_squared()
            .expect("practical policies calibrate");
        assert!(r2 > 0.8, "R² {r2}");
    }

    #[test]
    fn calibration_r2_is_high() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let (_pred, r2) = engine.calibrate_predictor(Benchmark::LuNcb).unwrap();
        assert!(r2 > 0.9, "R² {r2}");
    }

    #[test]
    fn integral_governor_runs_produce_sane_metrics() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        for policy in PolicyKind::CLOSED_LOOP {
            let r = engine.run(Benchmark::LuNcb, policy).unwrap();
            assert_eq!(r.decisions().len(), 3, "{policy}");
            let t = r.max_temperature().get();
            assert!(
                t.is_finite() && t > 45.0 && t < 120.0,
                "{policy}: T_max {t}"
            );
            assert!(r.mean_efficiency() > 0.5 && r.mean_efficiency() < 1.0);
            assert!(r.max_noise_percent().is_some(), "{policy}");
            // No θ calibration for the closed-loop family.
            assert!(r.predictor_r_squared().is_none(), "{policy}");
            for d in r.decisions() {
                for (dom, &n) in chip.domains().iter().zip(&d.n_on) {
                    assert!(n >= 1 && n <= dom.vr_count(), "{policy}: n_on {n}");
                }
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let a = engine.run(Benchmark::Fft, PolicyKind::PracVT).unwrap();
        let b = engine.run(Benchmark::Fft, PolicyKind::PracVT).unwrap();
        assert_eq!(a.max_temperature(), b.max_temperature());
        assert_eq!(a.max_noise_percent(), b.max_noise_percent());
        assert_eq!(a.decisions().len(), b.decisions().len());
        for (da, db) in a.decisions().iter().zip(b.decisions()) {
            assert_eq!(da.gating, db.gating);
        }
    }

    #[test]
    fn run_trace_replays_external_activity() {
        let chip = power8_like();
        // Profiling must fit inside the replayed trace for the synthetic
        // and replay paths to calibrate on identical data.
        let engine = SimulationEngine::new(
            &chip,
            EngineConfig {
                profiling_decisions: 3,
                ..tiny_config()
            },
        );
        // Replaying the same trace the synthetic path would generate
        // reproduces the synthetic result exactly.
        let trace =
            TraceGenerator::new(&chip).generate(Benchmark::Volrend, engine.config().duration);
        let replayed = engine.run_trace(&trace, PolicyKind::OracT).unwrap();
        let synthetic = engine.run(Benchmark::Volrend, PolicyKind::OracT).unwrap();
        assert_eq!(replayed.max_temperature(), synthetic.max_temperature());
        assert_eq!(replayed.max_noise_percent(), synthetic.max_noise_percent());
    }

    #[test]
    fn run_reports_phase_times() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let r = engine.run(Benchmark::Fft, PolicyKind::OracT).unwrap();
        let perf = r.phase_times();
        for phase in [
            "trace",
            "calibrate",
            "steady",
            "policy",
            "transient",
            "noise",
        ] {
            assert!(perf.samples(phase) > 0, "phase {phase} has no samples");
        }
        // Transient stepping runs once per decision interval.
        assert_eq!(perf.samples("transient"), 3);
        assert!(perf.total_seconds() > 0.0);
        assert!(perf.render().contains("transient"));
    }

    #[test]
    fn run_emits_telemetry_and_solver_profile() {
        let chip = power8_like();
        let mut engine = SimulationEngine::new(&chip, tiny_config());
        let (tel, sink) = Telemetry::recorder();
        engine.set_telemetry(tel);
        let r = engine.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();

        // Every phase that issues solves is in the profile, with real
        // (finite) residuals.
        for phase in ["steady", "transient", "noise"] {
            let agg = r
                .solver_profile()
                .get(phase)
                .unwrap_or_else(|| panic!("phase {phase} missing from solver profile"));
            assert!(agg.solves > 0, "phase {phase} recorded no solves");
            assert!(
                agg.max_residual.is_finite(),
                "phase {phase} residual {}",
                agg.max_residual
            );
        }
        // Transient stepping solves once per thermal step.
        assert_eq!(
            r.solver_profile().get("transient").unwrap().solves as usize,
            r.total_power().len()
        );

        // The whole stack reported through one sink.
        for kind in [
            EventKind::SpanStart,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Histogram,
            EventKind::Gating,
            EventKind::Emergency,
            EventKind::Solve,
            EventKind::Progress,
        ] {
            assert!(sink.count_kind(kind) > 0, "no {kind:?} events in the trace");
        }
        // One gating event per decision; spans for every phase.
        assert_eq!(sink.count_kind(EventKind::Gating), r.decisions().len());
        let names: Vec<String> = sink.events().iter().map(|e| e.name.to_string()).collect();
        for span in ["engine.trace", "engine.steady", "engine.run"] {
            assert!(names.iter().any(|n| n == span), "missing span {span}");
        }
        // Solve events carry the backend the engine resolved to: Auto
        // pins warm CG for transient stepping and direct for the PDN IR
        // solves (the measured break-even split — DESIGN.md §11).
        let (transient_event, ir_event) = match engine.config().solver {
            SolverBackend::GaussSeidel => ("thermal.gs", "pdn.ir_cg"),
            SolverBackend::Cg => ("thermal.transient_cg", "pdn.ir_cg"),
            SolverBackend::Mgcg => ("thermal.transient_mgcg", "pdn.ir_mgcg"),
            SolverBackend::Auto => ("thermal.transient_cg", "pdn.ir_direct"),
            SolverBackend::Direct => ("thermal.transient_direct", "pdn.ir_direct"),
        };
        assert!(
            names.iter().any(|n| n == transient_event),
            "missing {transient_event}"
        );
        assert!(names.iter().any(|n| n == ir_event), "missing {ir_event}");
    }

    #[test]
    fn solver_backends_agree_over_a_full_run() {
        // The direct LDLᵀ path must reproduce the iterative baselines at
        // simulation-metric precision over an entire traced run: same
        // gating decisions, and temperatures / noise within far less than
        // any physically meaningful margin.
        let chip = power8_like();
        let trace = TraceGenerator::new(&chip).generate(Benchmark::LuNcb, tiny_config().duration);
        let run_with = |solver: SolverBackend| {
            let engine = SimulationEngine::new(
                &chip,
                EngineConfig {
                    solver,
                    ..tiny_config()
                },
            );
            engine.run_trace(&trace, PolicyKind::OracVT).unwrap()
        };
        let direct = run_with(SolverBackend::Direct);
        let gs = run_with(SolverBackend::GaussSeidel);
        let cg = run_with(SolverBackend::Cg);
        let mgcg = run_with(SolverBackend::Mgcg);
        for (name, other) in [("gs", &gs), ("cg", &cg), ("mgcg", &mgcg)] {
            let dt = (direct.max_temperature().get() - other.max_temperature().get()).abs();
            assert!(dt < 1e-2, "direct vs {name} T_max gap {dt} °C");
            let dn =
                (direct.max_noise_percent().unwrap() - other.max_noise_percent().unwrap()).abs();
            assert!(dn < 1e-2, "direct vs {name} noise gap {dn} %");
            assert_eq!(direct.decisions().len(), other.decisions().len());
            for (da, db) in direct.decisions().iter().zip(other.decisions()) {
                assert_eq!(da.gating, db.gating, "gating diverged vs {name}");
            }
        }
    }

    #[test]
    fn disabled_telemetry_runs_match_enabled_runs() {
        let chip = power8_like();
        let quiet = SimulationEngine::new(&chip, tiny_config());
        let mut loud = SimulationEngine::new(&chip, tiny_config());
        let (tel, _sink) = Telemetry::recorder();
        loud.set_telemetry(tel);
        let a = quiet.run(Benchmark::Fft, PolicyKind::PracVT).unwrap();
        let b = loud.run(Benchmark::Fft, PolicyKind::PracVT).unwrap();
        assert_eq!(a.max_temperature(), b.max_temperature());
        assert_eq!(a.max_noise_percent(), b.max_noise_percent());
        assert_eq!(a.emergency_cycle_fraction(), b.emergency_cycle_fraction());
    }

    #[test]
    fn frame_recorder_emits_frames_without_perturbing_physics() {
        let chip = power8_like();
        let framed_config = EngineConfig {
            frame_every: 25,
            frame_grid: 8,
            ..tiny_config()
        };
        let mut framed = SimulationEngine::new(&chip, framed_config.clone());
        let (tel, sink) = Telemetry::recorder();
        framed.set_telemetry(tel);
        let with_frames = framed.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();

        // 3 ms ROI at 20 µs steps = 150 steps; every 25th is sampled.
        let expected_frames = 150 / 25;
        let events = sink.events();
        let count_name = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count_name("thermal.frame"), expected_frames);
        assert_eq!(count_name("engine.lanes"), expected_frames);
        assert_eq!(count_name("thermal.hotspot"), expected_frames);
        assert_eq!(sink.count_kind(EventKind::Frame), 3 * expected_frames);

        // Self-accounting counters land at end of run.
        let counter_total = |name: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.kind == EventKind::Counter && e.name == name)
                .filter_map(|e| {
                    e.fields.iter().find_map(|(k, v)| match (k.as_ref(), v) {
                        ("delta", simkit::telemetry::FieldValue::U64(d)) => Some(*d),
                        _ => None,
                    })
                })
                .sum()
        };
        assert_eq!(counter_total("telemetry.frames"), expected_frames as u64);
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Counter && e.name == "telemetry.overhead"),
            "telemetry.overhead counter missing"
        );

        // The hotspot track is a running maximum.
        let hotspots: Vec<f64> = events
            .iter()
            .filter(|e| e.name == "thermal.hotspot")
            .filter_map(|e| {
                e.fields.iter().find_map(|(k, v)| match (k.as_ref(), v) {
                    ("value", simkit::telemetry::FieldValue::F64(t)) => Some(*t),
                    _ => None,
                })
            })
            .collect();
        assert_eq!(hotspots.len(), expected_frames);
        assert!(hotspots.windows(2).all(|w| w[1] >= w[0]));

        // Frame capture reads state only: physics identical to a
        // frames-off run.
        let plain = SimulationEngine::new(&chip, tiny_config());
        let without = plain.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();
        assert_eq!(with_frames.max_temperature(), without.max_temperature());
        assert_eq!(with_frames.max_noise_percent(), without.max_noise_percent());

        // frame_every == 0 with telemetry on adds no frame events.
        let mut unframed = SimulationEngine::new(&chip, tiny_config());
        let (tel2, sink2) = Telemetry::recorder();
        unframed.set_telemetry(tel2);
        unframed.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();
        assert_eq!(sink2.count_kind(EventKind::Frame), 0);
        let no_overhead = sink2
            .events()
            .iter()
            .all(|e| e.name != "telemetry.overhead" && e.name != "telemetry.frames");
        assert!(no_overhead, "frames-off run must not self-account");
    }

    #[test]
    fn run_trace_rejects_wrong_channel_count() {
        let chip = power8_like();
        let engine = SimulationEngine::new(&chip, tiny_config());
        let csv = "# dt_us=20\nblock_0,block_1\n0.5,0.5\n0.6,0.4\n";
        let trace = workload::replay::read_csv(csv.as_bytes(), Benchmark::Fft).unwrap();
        assert!(engine.run_trace(&trace, PolicyKind::AllOn).is_err());
    }
}
