//! Delayed thermal sensor readings.
//!
//! The practical policies cannot read the true instantaneous regulator
//! temperatures: Section 6.3 places a digital thermal sensor next to each
//! regulator (10 K readings/s class) and budgets the sensing plus
//! firmware aggregation delay at ~100 µs — at each decision point the
//! governor works with readings that old. [`ThermalSensorArray`] models
//! that delay with a ring buffer of snapshots, plus the sensors'
//! quantisation.

use simkit::units::Seconds;

/// A chip-wide array of per-regulator thermal sensors with read-out
/// latency and quantisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSensorArray {
    n_sensors: usize,
    latency_steps: usize,
    quantisation_c: f64,
    /// Ring buffer of the last `latency_steps + 1` snapshots.
    history: Vec<Vec<f64>>,
    next_slot: usize,
    recorded: usize,
}

impl ThermalSensorArray {
    /// Creates an array of `n_sensors` sensors whose readings lag by
    /// `latency`, given that the engine records one snapshot every
    /// `snapshot_interval`.
    ///
    /// # Panics
    ///
    /// Panics when `snapshot_interval` is not positive.
    pub fn new(n_sensors: usize, latency: Seconds, snapshot_interval: Seconds) -> Self {
        assert!(
            snapshot_interval.get() > 0.0,
            "snapshot interval must be positive"
        );
        let latency_steps = (latency.get() / snapshot_interval.get()).round() as usize;
        ThermalSensorArray {
            n_sensors,
            latency_steps,
            quantisation_c: 0.25,
            history: vec![vec![0.0; n_sensors]; latency_steps + 1],
            next_slot: 0,
            recorded: 0,
        }
    }

    /// Overrides the sensor quantisation step (°C); 0 disables it.
    ///
    /// # Panics
    ///
    /// Panics when `step_c` is negative.
    pub fn with_quantisation(mut self, step_c: f64) -> Self {
        assert!(step_c >= 0.0, "quantisation must be non-negative");
        self.quantisation_c = step_c;
        self
    }

    /// Number of sensors in the array.
    pub fn len(&self) -> usize {
        self.n_sensors
    }

    /// Whether the array has no sensors.
    pub fn is_empty(&self) -> bool {
        self.n_sensors == 0
    }

    /// The configured latency in snapshots.
    pub fn latency_steps(&self) -> usize {
        self.latency_steps
    }

    /// Records the true temperatures at the current instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `truth` has the wrong length.
    pub fn record(&mut self, truth: &[f64]) {
        debug_assert_eq!(truth.len(), self.n_sensors);
        self.history[self.next_slot].copy_from_slice(truth);
        self.next_slot = (self.next_slot + 1) % self.history.len();
        self.recorded += 1;
    }

    /// The readings visible to the governor now: the snapshot from
    /// `latency` ago (or the oldest available during warm-up), quantised.
    pub fn read(&self) -> Vec<f64> {
        let available = self.recorded.min(self.history.len());
        if available == 0 {
            return vec![0.0; self.n_sensors];
        }
        // The newest snapshot sits just before next_slot; we want the one
        // `latency_steps` older (clamped to what exists).
        let lag = self.latency_steps.min(available - 1);
        let idx = (self.next_slot + self.history.len() - 1 - lag) % self.history.len();
        self.history[idx]
            .iter()
            .map(|&t| self.quantise(t))
            .collect()
    }

    fn quantise(&self, t: f64) -> f64 {
        if self.quantisation_c == 0.0 {
            t
        } else {
            (t / self.quantisation_c).round() * self.quantisation_c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(latency_steps: usize) -> ThermalSensorArray {
        ThermalSensorArray::new(
            2,
            Seconds::from_micros(latency_steps as f64 * 10.0),
            Seconds::from_micros(10.0),
        )
        .with_quantisation(0.0)
    }

    #[test]
    fn readings_lag_by_latency() {
        let mut s = array(3);
        for k in 0..10 {
            s.record(&[k as f64, 100.0 + k as f64]);
        }
        // Latest snapshot is 9; reading must be 9 − 3 = 6.
        assert_eq!(s.read(), vec![6.0, 106.0]);
    }

    #[test]
    fn zero_latency_reads_latest() {
        let mut s = array(0);
        s.record(&[1.0, 2.0]);
        s.record(&[3.0, 4.0]);
        assert_eq!(s.read(), vec![3.0, 4.0]);
    }

    #[test]
    fn warmup_clamps_to_oldest() {
        let mut s = array(5);
        s.record(&[7.0, 8.0]);
        // Only one snapshot exists: use it.
        assert_eq!(s.read(), vec![7.0, 8.0]);
    }

    #[test]
    fn unrecorded_array_reads_zero() {
        let s = array(2);
        assert_eq!(s.read(), vec![0.0, 0.0]);
    }

    #[test]
    fn quantisation_rounds() {
        let mut s = ThermalSensorArray::new(1, Seconds::ZERO, Seconds::from_micros(10.0));
        s.record(&[61.37]);
        assert_eq!(s.read(), vec![61.25]);
    }

    #[test]
    fn latency_steps_derived_from_durations() {
        let s = ThermalSensorArray::new(4, Seconds::from_micros(100.0), Seconds::from_micros(20.0));
        assert_eq!(s.latency_steps(), 5);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
