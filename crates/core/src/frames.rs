//! Spatial frame recorder: periodic snapshots of the thermal grid,
//! per-domain voltage lanes, and the VR gating mask, emitted as
//! [`EventKind::Frame`] telemetry events.
//!
//! Every `frame_every` thermal steps (see
//! [`EngineConfig`](crate::EngineConfig)) the recorder captures:
//!
//! * `thermal.frame` — the silicon heat map downsampled to at most
//!   `frame_grid` cells per axis, rows bottom-first joined by `;`,
//!   cells by `,`, two decimals;
//! * `engine.lanes` — the per-domain supply voltage lanes (Vdd scaled
//!   by the latest measured droop fraction) plus the active-VR gating
//!   mask as a `'0'`/`'1'` string;
//! * `thermal.hotspot` — the location and magnitude of the *running*
//!   max-temperature cell, so the Chrome-trace export renders a
//!   monotone hotspot counter track next to the solver spans.
//!
//! The recorder times its own work and reports it at the end of the
//! run as the `telemetry.overhead` counter (microseconds) together
//! with a `telemetry.frames` frame count, so BENCH snapshots can gate
//! recording cost. When disabled (`frame_every == 0`) the engine never
//! constructs a recorder and the run's event stream is unchanged.

use simkit::telemetry::{EventKind, Telemetry};
use simkit::units::Seconds;
use std::fmt::Write as _;
use std::time::Instant;
use thermal::ThermalState;
use vreg::GatingState;

/// Periodic spatial-frame capture into a telemetry trace.
#[derive(Debug)]
pub struct FrameRecorder {
    telemetry: Telemetry,
    every: usize,
    max_edge: usize,
    thermal_step_s: f64,
    frames: u64,
    /// Running hotspot: magnitude and location of the hottest silicon
    /// cell seen by any captured frame so far.
    running_max_c: f64,
    running_max_cell: (usize, usize),
    overhead_s: f64,
    /// Reused render buffer, so steady-state capture allocates little.
    scratch: String,
}

impl FrameRecorder {
    /// Builds a recorder capturing every `every` thermal steps (must be
    /// positive; the engine gates construction on that) at `max_edge`
    /// downsampled resolution.
    pub fn new(telemetry: Telemetry, every: usize, max_edge: usize, thermal_step: Seconds) -> Self {
        FrameRecorder {
            telemetry,
            every: every.max(1),
            max_edge: max_edge.max(1),
            thermal_step_s: thermal_step.get(),
            frames: 0,
            running_max_c: f64::MIN,
            running_max_cell: (0, 0),
            overhead_s: 0.0,
            scratch: String::new(),
        }
    }

    /// Number of frames captured so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Wall time spent capturing and serialising frames.
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// Observes one thermal step; captures a frame when the step lands
    /// on the sampling grid. `lane_voltages` is the engine's held
    /// per-domain supply estimate (Vdd minus the latest measured droop).
    pub fn observe(
        &mut self,
        step: usize,
        state: &ThermalState,
        gating: &GatingState,
        lane_voltages: &[f64],
    ) {
        if !step.is_multiple_of(self.every) {
            return;
        }
        let start = Instant::now();
        let t_sim = step as f64 * self.thermal_step_s;

        // Downsampled heat map.
        let (nx, ny, frame) = state.downsampled(self.max_edge);
        self.scratch.clear();
        for (j, row) in frame.chunks(nx).enumerate() {
            if j > 0 {
                self.scratch.push(';');
            }
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    self.scratch.push(',');
                }
                let _ = write!(self.scratch, "{cell:.2}");
            }
        }
        self.telemetry
            .event(EventKind::Frame, "thermal.frame")
            .field_u64("step", step as u64)
            .field_f64("t_sim_s", t_sim)
            .field_u64("nx", nx as u64)
            .field_u64("ny", ny as u64)
            .field_str("data", self.scratch.as_str())
            .emit();

        // Voltage lanes + gating mask.
        self.scratch.clear();
        for (d, v) in lane_voltages.iter().enumerate() {
            if d > 0 {
                self.scratch.push(',');
            }
            let _ = write!(self.scratch, "{v:.4}");
        }
        let mut mask = String::with_capacity(gating.len());
        for v in 0..gating.len() {
            mask.push(if gating.is_on(floorplan::VrId(v)) {
                '1'
            } else {
                '0'
            });
        }
        self.telemetry
            .event(EventKind::Frame, "engine.lanes")
            .field_u64("step", step as u64)
            .field_f64("t_sim_s", t_sim)
            .field_str("volts", self.scratch.as_str())
            .field_str("mask", mask)
            .field_u64("active", gating.active_count() as u64)
            .emit();

        // Running hotspot track.
        let (i, j, t) = state.hottest_cell();
        if t.get() > self.running_max_c {
            self.running_max_c = t.get();
            self.running_max_cell = (i, j);
        }
        self.telemetry
            .event(EventKind::Frame, "thermal.hotspot")
            .field_u64("step", step as u64)
            .field_f64("value", self.running_max_c)
            .field_u64("i", self.running_max_cell.0 as u64)
            .field_u64("j", self.running_max_cell.1 as u64)
            .emit();

        self.frames += 1;
        self.overhead_s += start.elapsed().as_secs_f64();
    }

    /// Emits the self-accounting counters (`telemetry.frames`,
    /// `telemetry.overhead` in whole microseconds) and consumes the
    /// recorder.
    pub fn finish(self) {
        self.telemetry.counter("telemetry.frames", self.frames);
        self.telemetry
            .counter("telemetry.overhead", (self.overhead_s * 1e6).round() as u64);
    }
}
