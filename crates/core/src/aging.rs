//! Regulator aging under gating policies.
//!
//! Section 7 of the paper observes that ThermoGater policies affect
//! aging: regulator utilisation is not uniform (Fig. 13), and silicon
//! wear-out rates grow exponentially with temperature. Because PracVT's
//! highly-utilised regulators tend to live in *cooler* regions (near
//! memory), thermally-aware gating "may balance out aging, particularly
//! considering wear-out paradigms where aging rate increases
//! exponentially with temperature." This module implements that
//! analysis: an Arrhenius acceleration model over each regulator's
//! temperature/utilisation history.

use crate::result::SimulationResult;
use floorplan::VrId;
use simkit::units::Celsius;

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333e-5;

/// An Arrhenius wear-out model for component regulators.
///
/// The instantaneous wear rate of regulator `i` is
///
/// ```text
/// rate_i(t) = AF(T_i(t)) · stress_i(t)
/// AF(T)     = exp( (Ea / k) · (1/T_ref − 1/T) )
/// ```
///
/// where `stress` is 1 while the regulator is on (full current stress —
/// electromigration, conductor self-heating) and a small residual while
/// gated (bias-temperature instability continues at ambient stress).
///
/// # Examples
///
/// ```
/// use thermogater::AgingModel;
/// use simkit::units::Celsius;
///
/// let model = AgingModel::electromigration();
/// // +20 °C roughly doubles the wear rate at Ea = 0.7 eV around 60 °C.
/// let af = model.acceleration_factor(Celsius::new(80.0));
/// assert!(af > 3.0 && af < 5.5, "AF {af}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgingModel {
    activation_energy_ev: f64,
    reference: Celsius,
    gated_stress: f64,
}

impl AgingModel {
    /// An electromigration-class model: Ea = 0.7 eV, referenced to 60 °C,
    /// with 15 % residual stress while gated.
    pub fn electromigration() -> Self {
        AgingModel {
            activation_energy_ev: 0.7,
            reference: Celsius::new(60.0),
            gated_stress: 0.15,
        }
    }

    /// A custom model.
    ///
    /// # Panics
    ///
    /// Panics when the activation energy is not positive or the gated
    /// stress is outside `[0, 1]`.
    pub fn new(activation_energy_ev: f64, reference: Celsius, gated_stress: f64) -> Self {
        assert!(activation_energy_ev > 0.0, "Ea must be positive");
        assert!(
            (0.0..=1.0).contains(&gated_stress),
            "gated stress must be in [0, 1]"
        );
        AgingModel {
            activation_energy_ev,
            reference,
            gated_stress,
        }
    }

    /// The Arrhenius acceleration factor at temperature `t`, relative to
    /// the model's reference temperature (1.0 at the reference).
    pub fn acceleration_factor(&self, t: Celsius) -> f64 {
        let t_k = t.to_kelvin();
        let ref_k = self.reference.to_kelvin();
        ((self.activation_energy_ev / K_B_EV) * (1.0 / ref_k - 1.0 / t_k)).exp()
    }

    /// Integrates wear over a simulation's per-regulator temperature and
    /// gating history.
    ///
    /// # Panics
    ///
    /// Panics when the result carries no decisions or no temperature
    /// samples (an engine result always has both).
    pub fn assess(&self, result: &SimulationResult) -> AgingReport {
        let temps = result.vr_temperatures();
        let n_vrs = temps.channel_count();
        let steps = temps.sample_count();
        assert!(steps > 0, "result has no temperature history");
        assert!(!result.decisions().is_empty(), "result has no decisions");
        let steps_per_decision = steps.div_ceil(result.decisions().len());

        let mut wear = vec![0.0f64; n_vrs];
        for (vr, w) in wear.iter_mut().enumerate() {
            let channel = temps.channel(vr);
            for (s, &t) in channel.iter().enumerate() {
                let decision = (s / steps_per_decision).min(result.decisions().len() - 1);
                let on = result.decisions()[decision].gating.is_on(VrId(vr));
                let stress = if on { 1.0 } else { self.gated_stress };
                *w += self.acceleration_factor(Celsius::new(t)) * stress;
            }
            *w /= steps as f64;
        }
        AgingReport { wear }
    }
}

/// Per-regulator accumulated wear (mean Arrhenius-accelerated stress per
/// step; dimensionless, 1.0 = continuous operation at the model's
/// reference temperature).
#[derive(Debug, Clone, PartialEq)]
pub struct AgingReport {
    wear: Vec<f64>,
}

impl AgingReport {
    /// Wear of one regulator.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn wear(&self, vr: VrId) -> f64 {
        self.wear[vr.0]
    }

    /// All per-regulator wear values, indexed by [`VrId`].
    pub fn wear_values(&self) -> &[f64] {
        &self.wear
    }

    /// The most-worn regulator.
    pub fn max_wear(&self) -> f64 {
        self.wear.iter().copied().fold(0.0, f64::max)
    }

    /// Mean wear over all regulators.
    pub fn mean_wear(&self) -> f64 {
        self.wear.iter().sum::<f64>() / self.wear.len() as f64
    }

    /// Aging imbalance: the ratio of the most-worn regulator to the
    /// fleet mean (1.0 = perfectly balanced). The paper's Section 7
    /// argument is that thermally-aware gating keeps this low because
    /// its busiest regulators are its coolest.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            1.0
        } else {
            self.max_wear() / mean
        }
    }

    /// Relative lifetime estimate vs. a fleet aging uniformly at the
    /// reference temperature: MTTF scales inversely with the worst
    /// regulator's wear rate.
    pub fn relative_mttf(&self) -> f64 {
        let max = self.max_wear();
        if max == 0.0 {
            f64::INFINITY
        } else {
            1.0 / max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_is_one_at_reference() {
        let m = AgingModel::electromigration();
        let af = m.acceleration_factor(Celsius::new(60.0));
        assert!((af - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_grows_exponentially() {
        let m = AgingModel::electromigration();
        let a70 = m.acceleration_factor(Celsius::new(70.0));
        let a80 = m.acceleration_factor(Celsius::new(80.0));
        let a90 = m.acceleration_factor(Celsius::new(90.0));
        assert!(a70 > 1.5 && a70 < 3.0, "a70 {a70}");
        // Roughly geometric growth per decade of °C.
        let r1 = a80 / a70;
        let r2 = a90 / a80;
        assert!((r1 - r2).abs() / r1 < 0.15, "ratios {r1} {r2}");
    }

    #[test]
    fn cooler_is_slower() {
        let m = AgingModel::electromigration();
        assert!(m.acceleration_factor(Celsius::new(45.0)) < 1.0);
    }

    #[test]
    #[should_panic(expected = "Ea must be positive")]
    fn invalid_ea_panics() {
        AgingModel::new(0.0, Celsius::new(60.0), 0.1);
    }

    #[test]
    #[should_panic(expected = "gated stress")]
    fn invalid_stress_panics() {
        AgingModel::new(0.7, Celsius::new(60.0), 1.5);
    }

    #[test]
    fn report_statistics() {
        let report = AgingReport {
            wear: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(report.max_wear(), 3.0);
        assert_eq!(report.mean_wear(), 2.0);
        assert!((report.imbalance() - 1.5).abs() < 1e-12);
        assert!((report.relative_mttf() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.wear(VrId(1)), 2.0);
        assert_eq!(report.wear_values().len(), 3);
    }

    #[test]
    fn empty_wear_imbalance_is_neutral() {
        let report = AgingReport { wear: vec![0.0; 4] };
        assert_eq!(report.imbalance(), 1.0);
        assert_eq!(report.relative_mttf(), f64::INFINITY);
    }
}
