//! The gating policies of the paper, plus the closed-loop governors.
//!
//! Every viable policy first receives the number of active regulators
//! each Vdd-domain needs to sustain peak conversion efficiency (`n_on`,
//! computed by the engine from the current demand and the regulator
//! bank). Policies only differ in *which* `n_on` regulators they select —
//! by a thermal ranking, by a noise-proximity ranking, or with an
//! emergency overlay — exactly the structure of Section 6.2.
//!
//! Beyond the paper's eight, the `Integral*` family closes the loop:
//! a per-domain adjustable-gain integral controller (Rao/Wardi-style
//! temperature regulation, Chen/Wardi-style power regulation) regulates
//! a configurable cap by *raising* `n_on` above the efficiency floor —
//! spending thermal or power headroom on voltage-noise margin — and
//! shedding back to the floor when the cap is threatened. The controller
//! state lives in [`IntegralController`]; the enum variant stays a
//! stateless tag like every other policy.

use floorplan::Floorplan;
use simkit::{Error, Result};
use vreg::GatingState;

/// The eight gating policies evaluated in the paper, extended with the
/// closed-loop integral governors (`IntegralT`, `IntegralP`).
///
/// Deliberately *not* `#[non_exhaustive]`: downstream matches (policy
/// cache tags, report columns) must break at compile time when a
/// variant is added, so two future policies can never silently share a
/// fallback tag and collide on the same cache file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Baseline: every regulator on all the time. Best-case voltage
    /// noise, but conversion efficiency drifts below the peak.
    AllOn,
    /// Baseline: no on-chip regulation — no conversion-loss heat on die.
    OffChip,
    /// Greedy thermally-aware gating: keep the instantaneously coolest
    /// `n_on` regulators on.
    Naive,
    /// Thermally-aware oracle: keep the coolest-*to-be* regulators on
    /// (perfect knowledge of next-interval power and temperature).
    OracT,
    /// Voltage-noise-aware oracle: keep the regulators closest to the
    /// current load (noise peak) on; thermally oblivious.
    OracV,
    /// OracT by default, per-domain all-on upon a (perfectly predicted)
    /// voltage emergency.
    OracVT,
    /// Practical OracT: delayed sensor readings + ΔT = θ·ΔP prediction +
    /// WMA power forecast.
    PracT,
    /// PracT plus a ~90 %-accurate voltage-emergency predictor driving
    /// per-domain all-on.
    PracVT,
    /// Closed-loop governor: per-domain adjustable-gain integral control
    /// of the domain's hottest sensed VR temperature against a
    /// configurable cap. Spends thermal headroom on extra active
    /// regulators (noise margin), sheds back to the efficiency floor when
    /// the cap is threatened.
    IntegralT,
    /// Closed-loop governor: per-domain adjustable-gain integral control
    /// of the domain's delivered power (load + conversion loss) against a
    /// configurable cap.
    IntegralP,
}

impl PolicyKind {
    /// The paper's policies, in the paper's figure-legend order.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Naive,
        PolicyKind::OracT,
        PolicyKind::OracV,
        PolicyKind::OracVT,
        PolicyKind::PracT,
        PolicyKind::PracVT,
        PolicyKind::AllOn,
        PolicyKind::OffChip,
    ];

    /// The closed-loop governors added on top of the paper's eight.
    pub const CLOSED_LOOP: [PolicyKind; 2] = [PolicyKind::IntegralT, PolicyKind::IntegralP];

    /// Every policy: the paper's eight followed by the closed-loop
    /// governors.
    pub const EXTENDED: [PolicyKind; 10] = [
        PolicyKind::Naive,
        PolicyKind::OracT,
        PolicyKind::OracV,
        PolicyKind::OracVT,
        PolicyKind::PracT,
        PolicyKind::PracVT,
        PolicyKind::AllOn,
        PolicyKind::OffChip,
        PolicyKind::IntegralT,
        PolicyKind::IntegralP,
    ];

    /// The label used in the paper's figures (and the comparison tables
    /// for the extended policies).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::AllOn => "all-on",
            PolicyKind::OffChip => "off-chip",
            PolicyKind::Naive => "Naïve",
            PolicyKind::OracT => "OracT",
            PolicyKind::OracV => "OracV",
            PolicyKind::OracVT => "OracVT",
            PolicyKind::PracT => "PracT",
            PolicyKind::PracVT => "PracVT",
            PolicyKind::IntegralT => "IntegralT",
            PolicyKind::IntegralP => "IntegralP",
        }
    }

    /// Whether the policy performs regulator gating at all (the two
    /// baselines do not).
    pub fn gates(self) -> bool {
        !matches!(self, PolicyKind::AllOn | PolicyKind::OffChip)
    }

    /// Whether the policy ranks regulators thermally.
    pub fn uses_thermal_ranking(self) -> bool {
        matches!(
            self,
            PolicyKind::Naive
                | PolicyKind::OracT
                | PolicyKind::OracVT
                | PolicyKind::PracT
                | PolicyKind::PracVT
                | PolicyKind::IntegralT
                | PolicyKind::IntegralP
        )
    }

    /// Whether the policy closes a feedback loop over the measured plant
    /// (the `Integral*` governor family).
    pub fn is_closed_loop(self) -> bool {
        matches!(self, PolicyKind::IntegralT | PolicyKind::IntegralP)
    }

    /// Whether the policy ranks regulators by noise proximity.
    pub fn uses_noise_ranking(self) -> bool {
        matches!(self, PolicyKind::OracV)
    }

    /// Whether the policy switches a domain to all-on upon a (predicted)
    /// voltage emergency.
    pub fn reacts_to_emergencies(self) -> bool {
        matches!(self, PolicyKind::OracVT | PolicyKind::PracVT)
    }

    /// Whether the policy has oracular knowledge of the future.
    pub fn is_oracular(self) -> bool {
        matches!(
            self,
            PolicyKind::OracT | PolicyKind::OracV | PolicyKind::OracVT
        )
    }

    /// Whether the policy is implementable in hardware (sensors,
    /// predictors, firmware).
    pub fn is_practical(self) -> bool {
        matches!(self, PolicyKind::PracT | PolicyKind::PracVT)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything a gating decision can depend on, assembled by the engine.
///
/// The engine fills `vr_temp_rank` with whatever temperature estimate the
/// active policy is entitled to: the instantaneous truth for `Naïve`, the
/// anticipated next-interval temperature for the oracles, or the
/// sensor-plus-predictor estimate for the practical policies. The policy
/// itself is just a ranking rule.
#[derive(Debug)]
pub struct PolicyInputs<'a> {
    /// The chip (for domain→VR structure).
    pub chip: &'a Floorplan,
    /// Required active regulators per domain (indexed by `DomainId`),
    /// as dictated by sustaining peak conversion efficiency.
    pub n_on: &'a [usize],
    /// Per-VR temperature estimate used for thermal ranking (°C).
    pub vr_temp_rank: &'a [f64],
    /// Per-VR load-proximity score (higher = closer to the load/noise
    /// peak).
    pub vr_noise_score: &'a [f64],
    /// Per-domain voltage-emergency flag for the upcoming interval.
    pub emergency: &'a [bool],
}

/// Applies a policy's ranking rule, producing each domain's regulators
/// in keep-on priority order (first = the regulator to keep on at the
/// smallest `n_on`).
///
/// Rankings are the 1 ms-granularity part of a decision: *which*
/// regulators to prefer. The *number* actually on (`n_on`) follows the
/// instantaneous current demand continuously, like automatic phase
/// shedding in a multi-phase regulator — so the engine re-takes a prefix
/// of this ranking at every simulation step.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when the input vectors do not
/// match the chip's domain/VR counts.
pub fn rank_regulators(
    kind: PolicyKind,
    inputs: &PolicyInputs<'_>,
) -> Result<Vec<Vec<floorplan::VrId>>> {
    let chip = inputs.chip;
    let n_vrs = chip.vr_sites().len();
    let n_domains = chip.domains().len();
    for (len, expected) in [
        (inputs.n_on.len(), n_domains),
        (inputs.vr_temp_rank.len(), n_vrs),
        (inputs.vr_noise_score.len(), n_vrs),
        (inputs.emergency.len(), n_domains),
    ] {
        if len != expected {
            return Err(Error::DimensionMismatch {
                expected,
                actual: len,
            });
        }
    }
    Ok(chip
        .domains()
        .iter()
        .map(|domain| {
            let mut ranked: Vec<_> = domain.vrs().to_vec();
            if kind.uses_noise_ranking() {
                // Highest load proximity first.
                ranked.sort_by(|a, b| {
                    inputs.vr_noise_score[b.0]
                        .partial_cmp(&inputs.vr_noise_score[a.0])
                        .expect("finite scores")
                        .then(a.0.cmp(&b.0))
                });
            } else if kind.uses_thermal_ranking() {
                // Coolest (anticipated) first.
                ranked.sort_by(|a, b| {
                    inputs.vr_temp_rank[a.0]
                        .partial_cmp(&inputs.vr_temp_rank[b.0])
                        .expect("finite temperatures")
                        .then(a.0.cmp(&b.0))
                });
            }
            ranked
        })
        .collect())
}

/// Applies a policy's selection rule at a fixed `n_on` per domain,
/// producing a chip-wide gating state — the snapshot taken at the
/// decision instant (the engine then slides `n_on` with the demand, see
/// [`rank_regulators`]).
///
/// # Examples
///
/// ```
/// use thermogater::{select_gating, PolicyInputs, PolicyKind};
/// use floorplan::reference::power8_like;
///
/// let chip = power8_like();
/// let n_on = vec![3; chip.domains().len()];
/// // Rank by some temperature estimate (here: VR index as a stand-in).
/// let temps: Vec<f64> = (0..96).map(|i| 50.0 + i as f64 * 0.1).collect();
/// let inputs = PolicyInputs {
///     chip: &chip,
///     n_on: &n_on,
///     vr_temp_rank: &temps,
///     vr_noise_score: &vec![0.0; 96],
///     emergency: &vec![false; chip.domains().len()],
/// };
/// let gating = select_gating(PolicyKind::OracT, &inputs)?;
/// // Three regulators on per domain, 16 domains.
/// assert_eq!(gating.active_count(), 48);
/// # Ok::<(), simkit::Error>(())
/// ```
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when the input vectors do not
/// match the chip's domain/VR counts.
pub fn select_gating(kind: PolicyKind, inputs: &PolicyInputs<'_>) -> Result<GatingState> {
    let rankings = rank_regulators(kind, inputs)?;
    gating_from_rankings(kind, inputs.chip, &rankings, inputs.n_on, inputs.emergency)
}

/// Materialises a gating state from per-domain rankings and the current
/// per-domain `n_on` (with the VT policies' emergency overlay).
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when `rankings`/`n_on`/
/// `emergency` do not have one entry per domain.
pub fn gating_from_rankings(
    kind: PolicyKind,
    chip: &Floorplan,
    rankings: &[Vec<floorplan::VrId>],
    n_on: &[usize],
    emergency: &[bool],
) -> Result<GatingState> {
    let n_vrs = chip.vr_sites().len();
    let n_domains = chip.domains().len();
    for (len, expected) in [
        (rankings.len(), n_domains),
        (n_on.len(), n_domains),
        (emergency.len(), n_domains),
    ] {
        if len != expected {
            return Err(Error::DimensionMismatch {
                expected,
                actual: len,
            });
        }
    }
    match kind {
        PolicyKind::AllOn => return Ok(GatingState::all_on(n_vrs)),
        PolicyKind::OffChip => return Ok(GatingState::all_off(n_vrs)),
        _ => {}
    }
    let mut state = GatingState::all_off(n_vrs);
    for domain in chip.domains() {
        let d = domain.id().0;
        if kind.reacts_to_emergencies() && emergency[d] {
            // Emergency overlay: the affected domain runs all-on, trading
            // a sliver of conversion efficiency for noise headroom.
            for &v in domain.vrs() {
                state.set(v, true)?;
            }
            continue;
        }
        let count = n_on[d].clamp(1, domain.vr_count());
        for &v in rankings[d].iter().take(count) {
            state.set(v, true)?;
        }
    }
    Ok(state)
}

/// Configuration of the closed-loop integral governors.
///
/// One struct serves both family members: `IntegralT` regulates against
/// `temp_setpoint_c`, `IntegralP` against `power_cap_w` (per domain).
/// The gain is not a constant: following Rao/Wardi, the effective gain is
/// adapted from a locally-estimated plant sensitivity so the *loop* gain
/// stays near `base_gain` regardless of how strongly the plant responds
/// to actuation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// `IntegralT` setpoint: per-domain cap on the hottest sensed VR
    /// temperature (°C).
    pub temp_setpoint_c: f64,
    /// `IntegralP` setpoint: per-domain cap on delivered power
    /// (load + conversion loss, W).
    pub power_cap_w: f64,
    /// Nominal integral gain before sensitivity adaptation (per unit of
    /// control error, per decision).
    pub base_gain: f64,
    /// Lower clamp on the adapted gain (keeps the loop live when the
    /// sensitivity estimate is large).
    pub min_gain: f64,
    /// Upper clamp on the adapted gain (keeps the loop stable when the
    /// sensitivity estimate is near zero).
    pub max_gain: f64,
    /// Floor on the |sensitivity| used for adaptation, preventing a
    /// division blow-up while the estimate is still warming up.
    pub sensitivity_floor: f64,
    /// EMA coefficient (0..1] for the sensitivity estimator; higher
    /// weighs recent observations more.
    pub sensitivity_smoothing: f64,
}

impl GovernorConfig {
    /// Defaults tuned for the power8-like reference chip: the temperature
    /// cap sits above the passive steady state so headroom exists, and
    /// the gain clamps keep one decision's worth of error from slewing
    /// the actuation by more than ~10 %.
    pub fn standard() -> Self {
        GovernorConfig {
            temp_setpoint_c: 85.0,
            power_cap_w: 12.0,
            base_gain: 0.05,
            min_gain: 1e-3,
            max_gain: 0.1,
            sensitivity_floor: 0.5,
            sensitivity_smoothing: 0.25,
        }
    }

    /// Appends every field as canonical `(<prefix><name>, value)` pairs
    /// for content hashing (floats render with `{:e}`).
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        for (name, value) in [
            ("temp_setpoint_c", self.temp_setpoint_c),
            ("power_cap_w", self.power_cap_w),
            ("base_gain", self.base_gain),
            ("min_gain", self.min_gain),
            ("max_gain", self.max_gain),
            ("sensitivity_floor", self.sensitivity_floor),
            ("sensitivity_smoothing", self.sensitivity_smoothing),
        ] {
            out.push((format!("{prefix}{name}"), format!("{value:e}")));
        }
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig::standard()
    }
}

/// The adjustable-gain law: `base_gain / max(|sensitivity|, floor)`,
/// clamped to `[min_gain, max_gain]`.
///
/// Monotone non-increasing in `|sensitivity|` — a plant that responds
/// more strongly per unit of actuation gets a proportionally smaller
/// gain, normalising the loop gain toward `base_gain`. A non-positive
/// `base_gain` yields exactly zero (a frozen controller).
pub fn adaptive_gain(cfg: &GovernorConfig, sensitivity: f64) -> f64 {
    if cfg.base_gain <= 0.0 {
        return 0.0;
    }
    let s = sensitivity
        .abs()
        .max(cfg.sensitivity_floor.max(f64::MIN_POSITIVE));
    (cfg.base_gain / s).clamp(cfg.min_gain, cfg.max_gain)
}

/// Maps a normalised control output `u ∈ [0, 1]` onto an active-regulator
/// count: `u = 0` keeps the efficiency floor (`floor`), `u = 1` turns the
/// whole domain on (`total`). Monotone in `u`; the result is always in
/// `[min(floor, total).max(1), total]`.
pub fn actuation_level(u: f64, floor: usize, total: usize) -> usize {
    let total = total.max(1);
    let floor = floor.clamp(1, total);
    let span = (total - floor) as f64;
    let extra = (u.clamp(0.0, 1.0) * span).round() as usize;
    floor + extra.min(total - floor)
}

/// Per-domain adjustable-gain integral controller with anti-windup.
///
/// The integrator *is* the control output `u ∈ [0, 1]`: clamping `u`
/// clamps the integrator, so the controller cannot wind up past the
/// actuator's range (conditional integration by construction). The plant
/// sensitivity `|Δy/Δu|` is estimated online with an EMA and fed to
/// [`adaptive_gain`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralController {
    cfg: GovernorConfig,
    u: f64,
    prev_measurement: Option<f64>,
    last_du: f64,
    sensitivity: f64,
}

impl IntegralController {
    /// A controller at rest: actuation at the floor, no sensitivity
    /// estimate yet.
    pub fn new(cfg: GovernorConfig) -> Self {
        IntegralController {
            cfg,
            u: 0.0,
            prev_measurement: None,
            last_du: 0.0,
            sensitivity: 0.0,
        }
    }

    /// The current control output `u ∈ [0, 1]`.
    pub fn output(&self) -> f64 {
        self.u
    }

    /// The current sensitivity estimate `|Δy/Δu|` (EMA).
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The gain the next [`step`](Self::step) will apply.
    pub fn gain(&self) -> f64 {
        adaptive_gain(&self.cfg, self.sensitivity)
    }

    /// One control step: update the sensitivity estimate from the
    /// previous actuation's observed effect, integrate the control error
    /// `setpoint − measurement` with the adapted gain, and clamp.
    /// Returns the new control output.
    pub fn step(&mut self, setpoint: f64, measurement: f64) -> f64 {
        if let Some(prev) = self.prev_measurement {
            if self.last_du.abs() > 1e-9 {
                let observed = ((measurement - prev) / self.last_du).abs();
                if observed.is_finite() {
                    let a = self.cfg.sensitivity_smoothing.clamp(0.0, 1.0);
                    self.sensitivity = (1.0 - a) * self.sensitivity + a * observed;
                }
            }
        }
        let error = setpoint - measurement;
        let gain = adaptive_gain(&self.cfg, self.sensitivity);
        let next = (self.u + gain * error).clamp(0.0, 1.0);
        self.last_du = next - self.u;
        self.u = next;
        self.prev_measurement = Some(measurement);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;
    use floorplan::VrId;

    struct Fixture {
        chip: Floorplan,
        n_on: Vec<usize>,
        temps: Vec<f64>,
        noise: Vec<f64>,
        emergency: Vec<bool>,
    }

    fn fixture() -> Fixture {
        let chip = power8_like();
        let n_domains = chip.domains().len();
        let n_vrs = chip.vr_sites().len();
        Fixture {
            chip,
            n_on: vec![2; n_domains],
            temps: (0..n_vrs).map(|i| 50.0 + i as f64).collect(),
            noise: (0..n_vrs).map(|i| i as f64).collect(),
            emergency: vec![false; n_domains],
        }
    }

    fn inputs(f: &Fixture) -> PolicyInputs<'_> {
        PolicyInputs {
            chip: &f.chip,
            n_on: &f.n_on,
            vr_temp_rank: &f.temps,
            vr_noise_score: &f.noise,
            emergency: &f.emergency,
        }
    }

    #[test]
    fn all_on_and_off_chip() {
        let f = fixture();
        let on = select_gating(PolicyKind::AllOn, &inputs(&f)).unwrap();
        assert_eq!(on.active_count(), 96);
        let off = select_gating(PolicyKind::OffChip, &inputs(&f)).unwrap();
        assert_eq!(off.active_count(), 0);
    }

    #[test]
    fn thermal_policies_pick_coolest_per_domain() {
        let f = fixture();
        for kind in [PolicyKind::Naive, PolicyKind::OracT, PolicyKind::PracT] {
            let state = select_gating(kind, &inputs(&f)).unwrap();
            // Temps ascend with VrId, so the 2 lowest-id VRs of each
            // domain are selected.
            for domain in f.chip.domains() {
                let mut ids: Vec<_> = domain.vrs().to_vec();
                ids.sort();
                assert!(state.is_on(ids[0]), "{kind}: coolest not on");
                assert!(state.is_on(ids[1]));
                assert_eq!(state.active_among(domain.vrs()), 2, "{kind}");
            }
        }
    }

    #[test]
    fn oracv_picks_highest_proximity() {
        let f = fixture();
        let state = select_gating(PolicyKind::OracV, &inputs(&f)).unwrap();
        for domain in f.chip.domains() {
            let mut ids: Vec<_> = domain.vrs().to_vec();
            ids.sort();
            // Noise score ascends with id → highest ids win.
            assert!(state.is_on(ids[ids.len() - 1]));
            assert!(state.is_on(ids[ids.len() - 2]));
            assert_eq!(state.active_among(domain.vrs()), 2);
        }
    }

    #[test]
    fn emergency_forces_domain_all_on() {
        let mut f = fixture();
        f.emergency[3] = true;
        for kind in [PolicyKind::OracVT, PolicyKind::PracVT] {
            let state = select_gating(kind, &inputs(&f)).unwrap();
            let affected = &f.chip.domains()[3];
            assert_eq!(
                state.active_among(affected.vrs()),
                affected.vr_count(),
                "{kind}"
            );
            // Unaffected domains still gate to n_on.
            let other = &f.chip.domains()[0];
            assert_eq!(state.active_among(other.vrs()), 2, "{kind}");
        }
    }

    #[test]
    fn emergencies_ignored_by_non_vt_policies() {
        let mut f = fixture();
        f.emergency.iter_mut().for_each(|e| *e = true);
        let state = select_gating(PolicyKind::OracT, &inputs(&f)).unwrap();
        for domain in f.chip.domains() {
            assert_eq!(state.active_among(domain.vrs()), 2);
        }
    }

    #[test]
    fn n_on_is_clamped_to_domain_size() {
        let mut f = fixture();
        f.n_on.iter_mut().for_each(|n| *n = 100);
        let state = select_gating(PolicyKind::OracT, &inputs(&f)).unwrap();
        assert_eq!(state.active_count(), 96);
        f.n_on.iter_mut().for_each(|n| *n = 0);
        let state = select_gating(PolicyKind::OracT, &inputs(&f)).unwrap();
        // At least one regulator per domain stays on.
        assert_eq!(state.active_count(), f.chip.domains().len());
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let f = fixture();
        let bad = PolicyInputs {
            chip: &f.chip,
            n_on: &f.n_on[..3],
            vr_temp_rank: &f.temps,
            vr_noise_score: &f.noise,
            emergency: &f.emergency,
        };
        assert!(select_gating(PolicyKind::OracT, &bad).is_err());
    }

    #[test]
    fn ties_resolve_deterministically() {
        let mut f = fixture();
        f.temps.iter_mut().for_each(|t| *t = 60.0);
        let a = select_gating(PolicyKind::OracT, &inputs(&f)).unwrap();
        let b = select_gating(PolicyKind::OracT, &inputs(&f)).unwrap();
        assert_eq!(a, b);
        // Lowest ids win ties.
        let d0 = &f.chip.domains()[0];
        let mut ids: Vec<_> = d0.vrs().to_vec();
        ids.sort();
        assert!(a.is_on(ids[0]) && a.is_on(ids[1]));
    }

    #[test]
    fn classification_helpers() {
        assert!(PolicyKind::PracVT.is_practical());
        assert!(!PolicyKind::OracVT.is_practical());
        assert!(PolicyKind::OracV.is_oracular());
        assert!(!PolicyKind::AllOn.gates());
        assert!(PolicyKind::Naive.uses_thermal_ranking());
        assert!(!PolicyKind::Naive.reacts_to_emergencies());
        assert!(PolicyKind::OracV.uses_noise_ranking());
        assert_eq!(PolicyKind::ALL.len(), 8);
        assert_eq!(PolicyKind::Naive.to_string(), "Naïve");
        // The closed-loop governors extend the paper's set.
        assert_eq!(PolicyKind::EXTENDED.len(), 10);
        assert_eq!(&PolicyKind::EXTENDED[..8], &PolicyKind::ALL[..]);
        assert_eq!(PolicyKind::CLOSED_LOOP.len(), 2);
        for kind in PolicyKind::CLOSED_LOOP {
            assert!(kind.is_closed_loop(), "{kind}");
            assert!(kind.gates(), "{kind}");
            assert!(kind.uses_thermal_ranking(), "{kind}");
            assert!(!kind.uses_noise_ranking(), "{kind}");
            assert!(!kind.reacts_to_emergencies(), "{kind}");
            assert!(!kind.is_oracular(), "{kind}");
            assert!(!kind.is_practical(), "{kind}");
        }
        for kind in PolicyKind::ALL {
            assert!(!kind.is_closed_loop(), "{kind}");
        }
        assert_eq!(PolicyKind::IntegralT.to_string(), "IntegralT");
        assert_eq!(PolicyKind::IntegralP.to_string(), "IntegralP");
    }

    #[test]
    fn integral_policies_rank_coolest_first() {
        let f = fixture();
        for kind in PolicyKind::CLOSED_LOOP {
            let state = select_gating(kind, &inputs(&f)).unwrap();
            for domain in f.chip.domains() {
                let mut ids: Vec<_> = domain.vrs().to_vec();
                ids.sort();
                assert!(state.is_on(ids[0]), "{kind}: coolest not on");
                assert_eq!(state.active_among(domain.vrs()), 2, "{kind}");
            }
        }
    }

    #[test]
    fn controller_output_stays_clamped() {
        let mut ctl = IntegralController::new(GovernorConfig::standard());
        // A wildly unreachable setpoint must pin u at 1 without overflow.
        for _ in 0..200 {
            let u = ctl.step(1000.0, 50.0);
            assert!((0.0..=1.0).contains(&u));
            assert!(u.is_finite());
        }
        assert_eq!(ctl.output(), 1.0);
        // And an unreachably low one pins u at 0.
        for _ in 0..200 {
            let u = ctl.step(-1000.0, 50.0);
            assert!((0.0..=1.0).contains(&u));
        }
        assert_eq!(ctl.output(), 0.0);
        assert!(ctl.sensitivity().is_finite());
        assert!(ctl.gain().is_finite());
    }

    #[test]
    fn adaptive_gain_is_monotone_and_clamped() {
        let cfg = GovernorConfig::standard();
        let mut prev = f64::INFINITY;
        for i in 0..100 {
            let g = adaptive_gain(&cfg, i as f64 * 0.5);
            assert!(g >= cfg.min_gain && g <= cfg.max_gain);
            assert!(g <= prev, "gain rose with sensitivity at {i}");
            prev = g;
        }
        // Zero base gain freezes the controller exactly.
        let frozen = GovernorConfig {
            base_gain: 0.0,
            ..GovernorConfig::standard()
        };
        assert_eq!(adaptive_gain(&frozen, 3.0), 0.0);
    }

    #[test]
    fn controller_tracks_a_simple_plant() {
        // y responds to u with sensitivity 20 °C per unit of actuation.
        let cfg = GovernorConfig::standard();
        let mut ctl = IntegralController::new(cfg);
        let ambient = 45.0;
        let sens = 20.0;
        let setpoint = ambient + 0.6 * sens;
        let mut y = ambient;
        for _ in 0..400 {
            let u = ctl.step(setpoint, y);
            y += 0.7 * (ambient + sens * u - y);
        }
        assert!(
            (y - setpoint).abs() < 0.5,
            "did not settle: y={y}, setpoint={setpoint}"
        );
        // The sensitivity estimate converged toward the plant's.
        assert!(ctl.sensitivity() > 1.0);
    }

    #[test]
    fn actuation_level_maps_endpoints() {
        assert_eq!(actuation_level(0.0, 3, 9), 3);
        assert_eq!(actuation_level(1.0, 3, 9), 9);
        assert_eq!(actuation_level(0.5, 3, 9), 6);
        // Degenerate shapes: floor above total, single-VR domain, zero.
        assert_eq!(actuation_level(0.5, 12, 9), 9);
        assert_eq!(actuation_level(0.7, 1, 1), 1);
        assert_eq!(actuation_level(0.3, 0, 0), 1);
        // Out-of-range u clamps.
        assert_eq!(actuation_level(-3.0, 2, 8), 2);
        assert_eq!(actuation_level(7.0, 2, 8), 8);
        // Monotone in u.
        let mut prev = 0;
        for i in 0..=20 {
            let level = actuation_level(i as f64 / 20.0, 2, 9);
            assert!(level >= prev);
            prev = level;
        }
    }

    #[test]
    fn naive_avoids_the_hottest() {
        let mut f = fixture();
        // Make one specific VR of domain 0 blazing hot.
        let d0 = &f.chip.domains()[0];
        let hot = d0.vrs()[4];
        f.temps[hot.0] = 200.0;
        let state = select_gating(PolicyKind::Naive, &inputs(&f)).unwrap();
        assert!(!state.is_on(hot));
        let _ = VrId(0);
    }
}
