//! **ThermoGater** — an architectural governor for thermally-aware
//! on-chip voltage-regulator gating.
//!
//! Reproduction of *ThermoGater: Thermally-Aware On-Chip Voltage
//! Regulation* (Khatamifard et al., ISCA 2017). Distributed on-chip
//! regulators dissipate their conversion loss as heat in a tiny
//! footprint; regulator gating keeps only as many component regulators on
//! as needed to sustain peak conversion efficiency, and ThermoGater picks
//! *which* ones — balancing the thermal profile against the voltage-noise
//! cost of supplying blocks from farther away.
//!
//! The crate provides:
//!
//! * [`PolicyKind`] / [`select_gating`] — the paper's eight gating
//!   policies (`all-on`, `off-chip`, `Naïve`, `OracT`, `OracV`,
//!   `OracVT`, `PracT`, `PracVT`);
//! * [`ThermalPredictor`] — the practical policies' linear
//!   ΔT = θ·ΔP per-regulator temperature model with R² calibration
//!   (Eqns. 2–3);
//! * [`DomainPowerForecaster`] — the weighted-moving-average power
//!   forecast over the last three decision points;
//! * [`ThermalSensorArray`] — delayed thermal sensor readings
//!   (100 µs-class sensor + aggregation latency);
//! * [`SimulationEngine`] — the closed-loop co-simulation
//!   (workload → power → regulators → thermal → noise → governor) that
//!   every experiment drives — single-program, multiprogrammed
//!   (`run_spec`), or replaying external traces (`run_trace`) — and
//!   [`SimulationResult`] with the metrics the paper reports (T_max,
//!   thermal gradient, conversion-loss savings, voltage noise,
//!   emergency residency);
//! * [`AgingModel`] — Arrhenius wear assessment over per-regulator
//!   temperature/utilisation histories (the Section 7 discussion).
//!
//! # Examples
//!
//! ```no_run
//! use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
//! use workload::Benchmark;
//! use floorplan::reference::power8_like;
//!
//! let chip = power8_like();
//! let engine = SimulationEngine::new(&chip, EngineConfig::fast());
//! let result = engine.run(Benchmark::LuNcb, PolicyKind::PracVT)?;
//! println!(
//!     "T_max {:.1}, gradient {:.1} °C, noise {:.1} %",
//!     result.max_temperature().get(),
//!     result.max_gradient(),
//!     result.max_noise_percent().unwrap_or(0.0),
//! );
//! # Ok::<(), simkit::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aging;
mod engine;
mod frames;
mod policy;
mod predictor;
mod result;
mod sensor;

pub use aging::{AgingModel, AgingReport};
pub use engine::{EngineConfig, SimulationEngine};
pub use frames::FrameRecorder;
pub use policy::{
    actuation_level, adaptive_gain, gating_from_rankings, rank_regulators, select_gating,
    GovernorConfig, IntegralController, PolicyInputs, PolicyKind,
};
pub use predictor::{DomainPowerForecaster, ThermalPredictor};
pub use result::{DecisionRecord, SimulationResult};
pub use sensor::ThermalSensorArray;
