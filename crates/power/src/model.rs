//! The calibrated per-block power model.

use crate::params::TechnologyParams;
use floorplan::{BlockId, DomainId, Floorplan, UnitKind};
use simkit::units::{Amps, Celsius, Watts};

/// Relative dynamic power density (W per mm² of block area, unnormalised)
/// by unit kind. Logic switches far more capacitance per area than cache
/// arrays; these ratios follow McPAT-class models for server cores.
fn dynamic_density_weight(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::Execution => 4.5,
        UnitKind::LoadStore => 3.5,
        UnitKind::InstructionSchedule => 2.4,
        UnitKind::InstructionFetch => 2.0,
        UnitKind::L2Cache => 0.6,
        UnitKind::L3Cache => 0.25,
        UnitKind::Noc => 1.4,
        UnitKind::MemoryController => 1.2,
        _ => 1.0,
    }
}

/// Relative leakage density by unit kind. SRAM leaks per area less than
/// hot logic but its share is non-trivial because caches dominate area.
fn leakage_density_weight(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::Execution => 2.0,
        UnitKind::LoadStore => 1.8,
        UnitKind::InstructionSchedule => 1.6,
        UnitKind::InstructionFetch => 1.5,
        UnitKind::L2Cache => 1.0,
        UnitKind::L3Cache => 0.7,
        UnitKind::Noc => 1.2,
        UnitKind::MemoryController => 1.1,
        _ => 1.0,
    }
}

/// A calibrated chip power model.
///
/// Per block `b` at activity `a ∈ [0, 1]` and temperature `T`:
///
/// ```text
/// P_b(a, T) = P_dyn_peak,b · a  +  P_leak_ref,b · e^{β (T − T_cal)}
/// ```
///
/// where the per-block peaks are set once at construction so that the
/// whole chip at full activity and `T_cal` consumes exactly the TDP with
/// the configured static share (Section 5: static ≤ 30 % at 80 °C).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    params: TechnologyParams,
    dyn_peak: Vec<Watts>,
    leak_ref: Vec<Watts>,
}

impl PowerModel {
    /// Calibrates a model for `chip` under `params`.
    pub fn calibrated(chip: &Floorplan, params: TechnologyParams) -> Self {
        let dyn_budget = params.tdp * (1.0 - params.static_share_at_calibration);
        let leak_budget = params.tdp * params.static_share_at_calibration;

        let dyn_weights: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| dynamic_density_weight(b.kind()) * b.area_mm2())
            .collect();
        let leak_weights: Vec<f64> = chip
            .blocks()
            .iter()
            .map(|b| leakage_density_weight(b.kind()) * b.area_mm2())
            .collect();
        let dyn_total: f64 = dyn_weights.iter().sum();
        let leak_total: f64 = leak_weights.iter().sum();

        PowerModel {
            params,
            dyn_peak: dyn_weights
                .iter()
                .map(|w| dyn_budget * (w / dyn_total))
                .collect(),
            leak_ref: leak_weights
                .iter()
                .map(|w| leak_budget * (w / leak_total))
                .collect(),
        }
    }

    /// The technology parameters the model was calibrated against.
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    /// Peak dynamic power of a block (activity = 1).
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range.
    pub fn block_dynamic_peak(&self, block: BlockId) -> Watts {
        self.dyn_peak[block.0]
    }

    /// Dynamic power of a block at the given activity (clamped to
    /// `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range.
    pub fn block_dynamic(&self, block: BlockId, activity: f64) -> Watts {
        self.dyn_peak[block.0] * activity.clamp(0.0, 1.0)
    }

    /// Leakage power of a block at temperature `t`.
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range.
    pub fn block_leakage(&self, block: BlockId, t: Celsius) -> Watts {
        let delta = t.get() - self.params.calibration_temperature.get();
        self.leak_ref[block.0] * (self.params.leakage_temp_coeff * delta).exp()
    }

    /// Total power of a block: dynamic at `activity` plus leakage at `t`.
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range.
    pub fn block_power(&self, block: BlockId, activity: f64, t: Celsius) -> Watts {
        self.block_dynamic(block, activity) + self.block_leakage(block, t)
    }

    /// Per-block power vector for a full activity/temperature snapshot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the slices do not have one entry per
    /// block.
    pub fn block_powers(&self, activities: &[f64], temperatures: &[Celsius]) -> Vec<Watts> {
        debug_assert_eq!(activities.len(), self.dyn_peak.len());
        debug_assert_eq!(temperatures.len(), self.dyn_peak.len());
        activities
            .iter()
            .zip(temperatures)
            .enumerate()
            .map(|(i, (&a, &t))| self.block_power(BlockId(i), a, t))
            .collect()
    }

    /// Output power demanded from one Vdd-domain's regulators: the sum of
    /// its blocks' powers.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is unknown or slices are too short.
    pub fn domain_power(
        &self,
        chip: &Floorplan,
        domain: DomainId,
        activities: &[f64],
        temperatures: &[Celsius],
    ) -> Watts {
        chip.domain(domain)
            .blocks()
            .iter()
            .map(|&b| self.block_power(b, activities[b.0], temperatures[b.0]))
            .sum()
    }

    /// Load current demanded from one Vdd-domain at nominal Vdd.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is unknown or slices are too short.
    pub fn domain_current(
        &self,
        chip: &Floorplan,
        domain: DomainId,
        activities: &[f64],
        temperatures: &[Celsius],
    ) -> Amps {
        self.domain_power(chip, domain, activities, temperatures) / self.params.vdd
    }

    /// Total chip power for a snapshot.
    pub fn chip_power(&self, activities: &[f64], temperatures: &[Celsius]) -> Watts {
        self.block_powers(activities, temperatures).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;

    fn model() -> (floorplan::Floorplan, PowerModel) {
        let chip = power8_like();
        let model = PowerModel::calibrated(&chip, TechnologyParams::table1());
        (chip, model)
    }

    fn uniform(chip: &floorplan::Floorplan, a: f64, t: f64) -> (Vec<f64>, Vec<Celsius>) {
        (
            vec![a; chip.blocks().len()],
            vec![Celsius::new(t); chip.blocks().len()],
        )
    }

    #[test]
    fn full_activity_at_calibration_hits_tdp() {
        let (chip, model) = model();
        let (a, t) = uniform(&chip, 1.0, 80.0);
        let total = model.chip_power(&a, &t);
        assert!((total.get() - 150.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn static_share_is_thirty_percent_at_calibration() {
        let (chip, model) = model();
        let leak: Watts = chip
            .blocks()
            .iter()
            .map(|b| model.block_leakage(b.id(), Celsius::new(80.0)))
            .sum();
        assert!((leak.get() - 45.0).abs() < 1e-6, "leak {leak}");
    }

    #[test]
    fn leakage_doubles_every_20c() {
        let (chip, model) = model();
        let b = chip.blocks()[0].id();
        let l80 = model.block_leakage(b, Celsius::new(80.0));
        let l100 = model.block_leakage(b, Celsius::new(100.0));
        assert!((l100.get() / l80.get() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_scales_linearly_and_clamps() {
        let (chip, model) = model();
        let b = chip.blocks()[0].id();
        let half = model.block_dynamic(b, 0.5);
        let full = model.block_dynamic(b, 1.0);
        assert!((full.get() - 2.0 * half.get()).abs() < 1e-12);
        assert_eq!(model.block_dynamic(b, 2.0), full);
        assert_eq!(model.block_dynamic(b, -1.0), Watts::ZERO);
    }

    #[test]
    fn exu_denser_than_l3() {
        let (chip, model) = model();
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.kind() == UnitKind::Execution)
            .unwrap();
        let l3 = chip
            .blocks()
            .iter()
            .find(|b| b.kind() == UnitKind::L3Cache)
            .unwrap();
        let exu_density = model.block_dynamic_peak(exu.id()).get() / exu.area_mm2();
        let l3_density = model.block_dynamic_peak(l3.id()).get() / l3.area_mm2();
        assert!(exu_density > 5.0 * l3_density);
    }

    #[test]
    fn domain_power_sums_blocks() {
        let (chip, model) = model();
        let (a, t) = uniform(&chip, 0.6, 70.0);
        let d0 = chip.domains()[0].id();
        let manual: Watts = chip
            .domain(d0)
            .blocks()
            .iter()
            .map(|&b| model.block_power(b, 0.6, Celsius::new(70.0)))
            .sum();
        let got = model.domain_power(&chip, d0, &a, &t);
        assert!((got.get() - manual.get()).abs() < 1e-12);
    }

    #[test]
    fn domain_current_is_power_over_vdd() {
        let (chip, model) = model();
        let (a, t) = uniform(&chip, 0.8, 80.0);
        let d0 = chip.domains()[0].id();
        let p = model.domain_power(&chip, d0, &a, &t);
        let i = model.domain_current(&chip, d0, &a, &t);
        assert!((i.get() - p.get() / 1.03).abs() < 1e-9);
    }

    #[test]
    fn core_domain_current_fits_nine_phases() {
        // A core domain at full tilt must demand roughly what its 9
        // phases can deliver (≈ 13.5 A at peak efficiency) — this anchors
        // the regulator-bank sizing to the power model.
        let (chip, model) = model();
        let (a, t) = uniform(&chip, 1.0, 80.0);
        let core = chip
            .domains()
            .iter()
            .find(|d| d.kind() == floorplan::DomainKind::Core)
            .unwrap();
        let i = model.domain_current(&chip, core.id(), &a, &t);
        assert!(
            i.get() > 9.0 && i.get() < 15.0,
            "core current {i} out of plausible band"
        );
    }

    #[test]
    fn total_chip_current_spans_fig6_band() {
        // Fig. 6's total power axis runs ≈ 20–100 W; mid-activity traces
        // should land inside it.
        let (chip, model) = model();
        let (a, t) = uniform(&chip, 0.5, 70.0);
        let total = model.chip_power(&a, &t);
        assert!(total.get() > 20.0 && total.get() < 120.0, "total {total}");
    }
}
