//! McPAT-style chip power modelling for the ThermoGater reproduction.
//!
//! Converts the `workload` crate's per-block activities into watts:
//! dynamic power scales linearly with activity against a per-block peak
//! budget, and static (leakage) power grows exponentially with
//! temperature. Following Section 5 of the paper, the model is calibrated
//! so that static power does not exceed 30 % of total chip consumption at
//! 80 °C, against the Table 1 technology parameters (22 nm, 4 GHz, 150 W
//! TDP, Vdd = 1.03 V).
//!
//! # Examples
//!
//! ```
//! use power::{PowerModel, TechnologyParams};
//! use floorplan::reference::power8_like;
//! use simkit::units::Celsius;
//!
//! let chip = power8_like();
//! let model = PowerModel::calibrated(&chip, TechnologyParams::table1());
//! let full: f64 = chip
//!     .blocks()
//!     .iter()
//!     .map(|b| model.block_power(b.id(), 1.0, Celsius::new(80.0)).get())
//!     .sum();
//! // Full activity at the calibration temperature hits the TDP.
//! assert!((full - 150.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod params;

pub use model::PowerModel;
pub use params::TechnologyParams;
