//! Technology parameters (Table 1 of the paper).

use simkit::units::{Celsius, Hertz, Volts, Watts};

/// Process/technology parameters of the modelled chip.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Clock frequency.
    pub frequency: Hertz,
    /// Thermal design power of the whole chip.
    pub tdp: Watts,
    /// Calibration temperature at which the static share is anchored.
    pub calibration_temperature: Celsius,
    /// Static share of total power at the calibration temperature and
    /// full activity (the paper bounds it at 30 %).
    pub static_share_at_calibration: f64,
    /// Exponential leakage-temperature coefficient per °C. The default
    /// (ln 2 / 20) doubles leakage every 20 °C, typical for 22 nm.
    pub leakage_temp_coeff: f64,
}

impl TechnologyParams {
    /// The Table 1 configuration: 22 nm, 4 GHz, 150 W TDP, Vdd = 1.03 V,
    /// static ≤ 30 % of total at 80 °C.
    pub fn table1() -> Self {
        TechnologyParams {
            vdd: Volts::new(1.03),
            frequency: Hertz::from_ghz(4.0),
            tdp: Watts::new(150.0),
            calibration_temperature: Celsius::new(80.0),
            static_share_at_calibration: 0.30,
            leakage_temp_coeff: std::f64::consts::LN_2 / 20.0,
        }
    }

    /// Appends every field as canonical `(<prefix><name>, value)` pairs
    /// for content hashing (floats render with `{:e}`).
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        for (name, value) in [
            ("vdd", self.vdd.get()),
            ("frequency", self.frequency.get()),
            ("tdp", self.tdp.get()),
            (
                "calibration_temperature",
                self.calibration_temperature.get(),
            ),
            (
                "static_share_at_calibration",
                self.static_share_at_calibration,
            ),
            ("leakage_temp_coeff", self.leakage_temp_coeff),
        ] {
            out.push((format!("{prefix}{name}"), format!("{value:e}")));
        }
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        TechnologyParams::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let p = TechnologyParams::table1();
        assert!((p.vdd.get() - 1.03).abs() < 1e-12);
        assert!((p.frequency.get() - 4e9).abs() < 1.0);
        assert!((p.tdp.get() - 150.0).abs() < 1e-12);
        assert!((p.static_share_at_calibration - 0.30).abs() < 1e-12);
        assert!((p.calibration_temperature.get() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_doubles_every_20_degrees() {
        let p = TechnologyParams::table1();
        let ratio = (p.leakage_temp_coeff * 20.0).exp();
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(TechnologyParams::default(), TechnologyParams::table1());
    }
}
