//! HotSpot-style compact thermal simulation for the ThermoGater
//! reproduction.
//!
//! The die is discretised into an `nx × ny` grid of silicon cells stacked
//! on a matching grid of heat-spreader cells and a lumped heat-sink node
//! with a convection path to ambient — the classic equivalent-RC-circuit
//! compact thermal model (Huang et al., Skadron et al.) the paper uses via
//! HotSpot 6.0, with the package defaults standing in for the POWER7+
//! package HotSpot ships:
//!
//! ```text
//!   silicon grid   — lateral conduction + heat injection (blocks, VRs)
//!        │ (½Si + TIM + ½Cu per cell)
//!   spreader grid  — strong lateral conduction (copper)
//!        │ (½Cu + sink base, per cell)
//!   sink node      — large thermal mass
//!        │ (convection)
//!   ambient        — fixed temperature
//! ```
//!
//! Steady state solves `G·T = P` by conjugate gradient; transients use
//! backward Euler (`(C/Δt + G)·T' = C/Δt·T + P`), warm-started
//! Gauss–Seidel, unconditionally stable at any step size.
//!
//! Component voltage regulators are much smaller than a grid cell, so
//! their self-heating above the local silicon temperature is modelled by
//! an analytic spreading resistance on top of the cell temperature — the
//! mechanism that makes a 0.04 mm² regulator a hotspot.
//!
//! # Examples
//!
//! ```
//! use thermal::{ThermalConfig, ThermalModel, PowerMap};
//! use floorplan::reference::power8_like;
//! use simkit::units::Watts;
//!
//! let chip = power8_like();
//! let model = ThermalModel::new(&chip, ThermalConfig::coarse());
//! let mut power = PowerMap::new(&model);
//! for block in chip.blocks() {
//!     power.add_block(block.id(), Watts::new(100.0 / chip.blocks().len() as f64))?;
//! }
//! let state = model.steady_state(&power)?;
//! assert!(state.max_silicon().get() > state.ambient().get());
//! # Ok::<(), simkit::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block_model;
mod config;
mod map;
mod model;
mod state;

pub use block_model::BlockThermalModel;
pub use config::{PackageParams, ThermalConfig};
pub use map::PowerMap;
pub use model::{FeedbackStats, SteadyScratch, ThermalModel, TransientStepper};
pub use state::ThermalState;
