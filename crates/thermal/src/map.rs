//! Per-node power injection maps.

use crate::model::ThermalModel;
use floorplan::{BlockId, VrId};
use simkit::units::Watts;
use simkit::{Error, Result};

/// Heat injected into each node of a [`ThermalModel`]'s network.
///
/// Block powers are spread over the silicon cells the block covers
/// (area-weighted); regulator conversion losses are injected into the
/// cell containing the regulator site.
///
/// # Examples
///
/// ```
/// use thermal::{ThermalModel, ThermalConfig, PowerMap};
/// use floorplan::reference::power8_like;
/// use simkit::units::Watts;
///
/// let chip = power8_like();
/// let model = ThermalModel::new(&chip, ThermalConfig::coarse());
/// let mut map = PowerMap::new(&model);
/// map.add_block(chip.blocks()[0].id(), Watts::new(5.0))?;
/// map.add_vr(chip.vr_sites()[0].id(), Watts::new(0.2))?;
/// assert!((map.total().get() - 5.2).abs() < 1e-12);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PowerMap<'m> {
    model: &'m ThermalModel,
    values: Vec<f64>,
}

impl<'m> PowerMap<'m> {
    /// An empty (all-zero) map for the given model.
    pub fn new(model: &'m ThermalModel) -> Self {
        PowerMap {
            model,
            values: vec![0.0; model.node_count()],
        }
    }

    /// Adds a block's power, spread area-weighted over its cells.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for negative or non-finite
    /// power.
    pub fn add_block(&mut self, block: BlockId, power: Watts) -> Result<()> {
        self.validate(power)?;
        for &(cell, fraction) in self.model.block_coverage(block) {
            self.values[cell] += power.get() * fraction;
        }
        Ok(())
    }

    /// Adds a regulator's conversion loss into its containing cell.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for negative or non-finite
    /// power.
    pub fn add_vr(&mut self, vr: VrId, loss: Watts) -> Result<()> {
        self.validate(loss)?;
        self.values[self.model.vr_cell(vr)] += loss.get();
        Ok(())
    }

    /// Adds power at an arbitrary die location (meters), e.g. for custom
    /// heat sources in what-if studies.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for negative or non-finite
    /// power.
    pub fn add_at(&mut self, x_m: f64, y_m: f64, power: Watts) -> Result<()> {
        self.validate(power)?;
        let cell = self.model.cell_of_point(x_m, y_m);
        self.values[cell] += power.get();
        Ok(())
    }

    /// Total injected power.
    pub fn total(&self) -> Watts {
        Watts::new(self.values.iter().sum())
    }

    /// Per-node injected power (watts), silicon cells first.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Resets the map to all zeros (cheaper than building a new one in
    /// per-step loops).
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    fn validate(&self, power: Watts) -> Result<()> {
        if !power.is_finite() || power.get() < 0.0 {
            return Err(Error::invalid_argument(format!(
                "injected power must be finite and non-negative, got {power}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThermalConfig;
    use floorplan::reference::power8_like;

    #[test]
    fn block_power_is_conserved() {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut map = PowerMap::new(&model);
        for block in chip.blocks() {
            map.add_block(block.id(), Watts::new(2.0)).unwrap();
        }
        let expected = 2.0 * chip.blocks().len() as f64;
        assert!((map.total().get() - expected).abs() < 1e-9);
    }

    #[test]
    fn vr_loss_lands_in_one_cell() {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut map = PowerMap::new(&model);
        map.add_vr(chip.vr_sites()[5].id(), Watts::new(0.3))
            .unwrap();
        let nonzero = map.values().iter().filter(|&&v| v > 0.0).count();
        assert_eq!(nonzero, 1);
        assert!((map.total().get() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_negative_and_nan() {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut map = PowerMap::new(&model);
        assert!(map
            .add_block(chip.blocks()[0].id(), Watts::new(-1.0))
            .is_err());
        assert!(map
            .add_vr(chip.vr_sites()[0].id(), Watts::new(f64::NAN))
            .is_err());
    }

    #[test]
    fn clear_zeroes_everything() {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut map = PowerMap::new(&model);
        map.add_block(chip.blocks()[0].id(), Watts::new(4.0))
            .unwrap();
        map.clear();
        assert_eq!(map.total(), Watts::ZERO);
    }

    #[test]
    fn add_at_targets_the_right_cell() {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut map = PowerMap::new(&model);
        // Center of the die.
        map.add_at(10.5e-3, 10.5e-3, Watts::new(1.0)).unwrap();
        let idx = map.values().iter().position(|&v| v > 0.0).unwrap();
        let (nx, _) = model.grid_size();
        let (i, j) = (idx % nx, idx / nx);
        assert_eq!((i, j), (16, 16));
    }
}
