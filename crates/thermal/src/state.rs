//! Temperature snapshots and spatial queries.

use crate::model::ThermalModel;
use floorplan::{BlockId, VrId};
use simkit::units::{Celsius, Watts};

/// A full-network temperature snapshot.
///
/// Holds one temperature per RC node (silicon cells, spreader cells,
/// sink). All the spatial queries the paper's metrics need — maximum
/// chip temperature, maximum thermal gradient, per-block and per-regulator
/// temperatures, heat maps — read the silicon layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    temps: Vec<f64>,
    nx: usize,
    ny: usize,
    ambient: Celsius,
}

impl ThermalState {
    pub(crate) fn uniform(model: &ThermalModel, t: Celsius) -> Self {
        let (nx, ny) = model.grid_size();
        ThermalState {
            temps: vec![t.get(); model.node_count()],
            nx,
            ny,
            ambient: model.ambient(),
        }
    }

    pub(crate) fn raw(&self) -> &[f64] {
        &self.temps
    }

    /// In-place access for solvers that update the state without
    /// reallocating (the zero-allocation transient step path).
    pub(crate) fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.temps
    }

    /// Ambient temperature of the generating model's package.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    fn silicon(&self) -> &[f64] {
        &self.temps[..self.nx * self.ny]
    }

    /// Temperature of one silicon cell.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are outside the grid.
    pub fn cell(&self, i: usize, j: usize) -> Celsius {
        assert!(i < self.nx && j < self.ny, "cell out of grid");
        Celsius::new(self.silicon()[j * self.nx + i])
    }

    /// Maximum silicon temperature — the paper's `T_max` metric.
    pub fn max_silicon(&self) -> Celsius {
        Celsius::new(self.silicon().iter().copied().fold(f64::MIN, f64::max))
    }

    /// Minimum silicon temperature.
    pub fn min_silicon(&self) -> Celsius {
        Celsius::new(self.silicon().iter().copied().fold(f64::MAX, f64::min))
    }

    /// Mean silicon temperature.
    pub fn mean_silicon(&self) -> Celsius {
        let s = self.silicon();
        Celsius::new(s.iter().sum::<f64>() / s.len() as f64)
    }

    /// Maximum spatial temperature difference across the silicon — the
    /// paper's *thermal gradient* metric, in °C.
    pub fn gradient(&self) -> f64 {
        self.max_silicon().get() - self.min_silicon().get()
    }

    /// Temperature of the lumped heat-sink node.
    ///
    /// At steady state, energy conservation pins this to
    /// `ambient + P_total × R_convection` exactly — a useful validation
    /// handle for the whole network.
    pub fn sink_temperature(&self) -> Celsius {
        Celsius::new(self.temps[self.temps.len() - 1])
    }

    /// Area-weighted average temperature of one block.
    ///
    /// # Panics
    ///
    /// Panics when the block id does not belong to the model's chip.
    pub fn block_temperature(&self, model: &ThermalModel, block: BlockId) -> Celsius {
        let t = model
            .block_coverage(block)
            .iter()
            .map(|&(cell, fraction)| self.temps[cell] * fraction)
            .sum();
        Celsius::new(t)
    }

    /// Temperature of a component regulator: its cell temperature plus
    /// self-heating from its own conversion loss through the sub-cell
    /// spreading resistance.
    ///
    /// # Panics
    ///
    /// Panics when the regulator id does not belong to the model's chip.
    pub fn vr_temperature(&self, model: &ThermalModel, vr: VrId, loss: Watts) -> Celsius {
        let cell_t = self.temps[model.vr_cell(vr)];
        Celsius::new(cell_t + model.vr_self_resistance() * loss.get().max(0.0))
    }

    /// Largest per-node temperature change against another state
    /// (used for feedback-loop convergence checks).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the states have different shapes.
    pub fn max_abs_difference(&self, other: &ThermalState) -> f64 {
        debug_assert_eq!(self.temps.len(), other.temps.len());
        self.temps
            .iter()
            .zip(&other.temps)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The silicon heat map as `ny` rows of `nx` temperatures (°C),
    /// bottom row first — ready for rendering Fig. 12-style frames.
    pub fn heatmap(&self) -> Vec<Vec<f64>> {
        self.silicon()
            .chunks(self.nx)
            .map(<[f64]>::to_vec)
            .collect()
    }

    /// Location and temperature of the hottest silicon cell,
    /// `(i, j, temperature)` — the hotspot the frame recorder tracks.
    /// Ties resolve to the lowest linear index, so the answer is
    /// deterministic for a deterministic state.
    pub fn hottest_cell(&self) -> (usize, usize, Celsius) {
        let silicon = self.silicon();
        let mut best = 0usize;
        for (idx, &t) in silicon.iter().enumerate() {
            if t > silicon[best] {
                best = idx;
            }
        }
        (best % self.nx, best / self.nx, Celsius::new(silicon[best]))
    }

    /// The silicon heat map averaged down to at most `max_edge` cells
    /// per axis (row-major, bottom row first, like [`heatmap`]).
    /// Each coarse cell is the arithmetic mean of the fine cells it
    /// covers, so the downsampled frame conserves the mean temperature;
    /// a `max_edge` at or above the grid edge returns the full
    /// resolution. Returns the coarse dimensions and the flattened
    /// frame.
    ///
    /// [`heatmap`]: ThermalState::heatmap
    pub fn downsampled(&self, max_edge: usize) -> (usize, usize, Vec<f64>) {
        let max_edge = max_edge.max(1);
        let cx = self.nx.min(max_edge);
        let cy = self.ny.min(max_edge);
        let silicon = self.silicon();
        let mut frame = vec![0.0; cx * cy];
        let mut counts = vec![0u32; cx * cy];
        for j in 0..self.ny {
            // Integer bin mapping: fine row j lands in coarse row
            // j·cy/ny (exact partition, no fine cell dropped).
            let jc = j * cy / self.ny;
            for i in 0..self.nx {
                let ic = i * cx / self.nx;
                frame[jc * cx + ic] += silicon[j * self.nx + i];
                counts[jc * cx + ic] += 1;
            }
        }
        for (cell, count) in frame.iter_mut().zip(&counts) {
            *cell /= f64::from(*count);
        }
        (cx, cy, frame)
    }

    /// Grid dimensions `(nx, ny)` of the heat map.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThermalConfig;
    use crate::map::PowerMap;
    use floorplan::reference::power8_like;

    fn setup() -> (floorplan::Floorplan, ThermalModel) {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        (chip, model)
    }

    #[test]
    fn uniform_state_statistics() {
        let (_, model) = setup();
        let state = model.ambient_state();
        assert_eq!(state.max_silicon(), Celsius::new(45.0));
        assert_eq!(state.min_silicon(), Celsius::new(45.0));
        assert_eq!(state.mean_silicon(), Celsius::new(45.0));
        assert_eq!(state.gradient(), 0.0);
    }

    #[test]
    fn heatmap_shape() {
        let (_, model) = setup();
        let state = model.ambient_state();
        let map = state.heatmap();
        assert_eq!(map.len(), 32);
        assert!(map.iter().all(|row| row.len() == 32));
        assert_eq!(state.grid_size(), (32, 32));
    }

    #[test]
    fn gradient_reflects_hotspot() {
        let (chip, model) = setup();
        let mut pm = PowerMap::new(&model);
        pm.add_block(chip.blocks()[0].id(), Watts::new(15.0))
            .unwrap();
        let state = model.steady_state(&pm).unwrap();
        assert!(state.gradient() > 1.0);
        assert!(state.max_silicon() > state.mean_silicon());
        assert!(state.mean_silicon() > state.min_silicon());
    }

    #[test]
    fn cell_indexing_is_row_major() {
        let (_, model) = setup();
        let state = model.ambient_state();
        // Just bounds behaviour: corners are valid, outside panics.
        let _ = state.cell(0, 0);
        let _ = state.cell(31, 31);
    }

    #[test]
    #[should_panic(expected = "cell out of grid")]
    fn cell_out_of_grid_panics() {
        let (_, model) = setup();
        let state = model.ambient_state();
        let _ = state.cell(32, 0);
    }

    #[test]
    fn sink_temperature_obeys_energy_conservation() {
        // All injected heat exits through the convection resistance, so
        // T_sink = ambient + P_total × R_conv exactly at steady state.
        let (chip, model) = setup();
        let mut pm = PowerMap::new(&model);
        let total = 80.0;
        for block in chip.blocks() {
            pm.add_block(block.id(), Watts::new(total / chip.blocks().len() as f64))
                .unwrap();
        }
        let state = model.steady_state(&pm).unwrap();
        let r_conv = model.config().package.convection_resistance;
        let expected = 45.0 + total * r_conv;
        assert!(
            (state.sink_temperature().get() - expected).abs() < 1e-3,
            "sink {} vs analytic {expected}",
            state.sink_temperature()
        );
    }

    #[test]
    fn hottest_cell_finds_the_hotspot() {
        let (chip, model) = setup();
        let mut pm = PowerMap::new(&model);
        pm.add_block(chip.blocks()[0].id(), Watts::new(15.0))
            .unwrap();
        let state = model.steady_state(&pm).unwrap();
        let (i, j, t) = state.hottest_cell();
        assert_eq!(t, state.max_silicon());
        assert_eq!(state.cell(i, j), t);
        // Uniform state: ties resolve to the origin cell.
        let ambient = model.ambient_state();
        assert_eq!(ambient.hottest_cell(), (0, 0, Celsius::new(45.0)));
    }

    #[test]
    fn downsampled_conserves_mean_and_covers_every_cell() {
        let (chip, model) = setup();
        let mut pm = PowerMap::new(&model);
        pm.add_block(chip.blocks()[0].id(), Watts::new(15.0))
            .unwrap();
        let state = model.steady_state(&pm).unwrap();

        // Full resolution passes through untouched.
        let (nx, ny, full) = state.downsampled(64);
        assert_eq!((nx, ny), state.grid_size());
        assert_eq!(full, state.heatmap().concat());

        // 32×32 → 8×8: every coarse cell averages a 4×4 block; the
        // grand mean is conserved exactly up to float rounding.
        let (cx, cy, coarse) = state.downsampled(8);
        assert_eq!((cx, cy), (8, 8));
        let fine_mean = state.mean_silicon().get();
        let coarse_mean = coarse.iter().sum::<f64>() / coarse.len() as f64;
        assert!((fine_mean - coarse_mean).abs() < 1e-9);
        // The hotspot survives downsampling as the warmest coarse cell.
        let (hi, hj, _) = state.hottest_cell();
        let hottest_coarse = coarse
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(idx, _)| idx)
            .unwrap();
        assert_eq!(hottest_coarse, (hj * cy / 32) * cx + (hi * cx / 32));
    }

    #[test]
    fn max_abs_difference_detects_change() {
        let (chip, model) = setup();
        let a = model.ambient_state();
        let mut pm = PowerMap::new(&model);
        pm.add_block(chip.blocks()[0].id(), Watts::new(5.0))
            .unwrap();
        let b = model.steady_state(&pm).unwrap();
        assert!(a.max_abs_difference(&b) > 0.1);
        assert_eq!(a.max_abs_difference(&a), 0.0);
    }

    #[test]
    fn vr_temperature_ignores_negative_loss() {
        let (chip, model) = setup();
        let state = model.ambient_state();
        let vr = chip.vr_sites()[0].id();
        let t = state.vr_temperature(&model, vr, Watts::new(-3.0));
        assert_eq!(t, Celsius::new(45.0));
    }
}
