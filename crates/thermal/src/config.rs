//! Thermal model configuration.

use simkit::linalg::SolverBackend;
use simkit::units::Celsius;

/// Physical parameters of the die and cooling package.
///
/// Defaults follow HotSpot's stock package (which the paper adapts,
/// mimicking POWER7+): a thinned silicon die on a copper spreader and an
/// air-cooled heat sink at 45 °C ambient.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageParams {
    /// Silicon thermal conductivity, W/(m·K).
    pub k_silicon: f64,
    /// Silicon volumetric heat capacity, J/(m³·K).
    pub c_silicon: f64,
    /// Die thickness, m.
    pub t_silicon: f64,
    /// Thermal-interface-material conductivity, W/(m·K).
    pub k_tim: f64,
    /// TIM thickness, m.
    pub t_tim: f64,
    /// Spreader (copper) conductivity, W/(m·K).
    pub k_spreader: f64,
    /// Spreader volumetric heat capacity, J/(m³·K).
    pub c_spreader: f64,
    /// Spreader thickness, m.
    pub t_spreader: f64,
    /// Total spreader-to-sink base resistance, K/W (distributed evenly
    /// over the grid cells).
    pub sink_base_resistance: f64,
    /// Sink-to-ambient convection resistance, K/W.
    pub convection_resistance: f64,
    /// Heat-sink thermal capacitance, J/K.
    pub sink_capacitance: f64,
    /// Ambient temperature.
    pub ambient: Celsius,
}

impl PackageParams {
    /// HotSpot-like default air-cooled package.
    pub fn hotspot_default() -> Self {
        PackageParams {
            k_silicon: 130.0,
            c_silicon: 1.75e6,
            t_silicon: 0.08e-3,
            k_tim: 4.0,
            t_tim: 20e-6,
            k_spreader: 400.0,
            c_spreader: 3.55e6,
            t_spreader: 1.0e-3,
            sink_base_resistance: 0.02,
            convection_resistance: 0.12,
            sink_capacitance: 140.0,
            ambient: Celsius::new(45.0),
        }
    }

    /// A better (lower-resistance) cooling solution, for the "our
    /// observations hold under better cooling" discussion in Section 5.
    pub fn improved_cooling() -> Self {
        PackageParams {
            sink_base_resistance: 0.01,
            convection_resistance: 0.06,
            ..PackageParams::hotspot_default()
        }
    }

    /// Appends every parameter as `(<prefix><name>, value)` pairs for
    /// content hashing; floats render with `{:e}` so the canonical
    /// string round-trips bit-exactly.
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        for (name, value) in [
            ("k_silicon", self.k_silicon),
            ("c_silicon", self.c_silicon),
            ("t_silicon", self.t_silicon),
            ("k_tim", self.k_tim),
            ("t_tim", self.t_tim),
            ("k_spreader", self.k_spreader),
            ("c_spreader", self.c_spreader),
            ("t_spreader", self.t_spreader),
            ("sink_base_resistance", self.sink_base_resistance),
            ("convection_resistance", self.convection_resistance),
            ("sink_capacitance", self.sink_capacitance),
            ("ambient_c", self.ambient.get()),
        ] {
            out.push((format!("{prefix}{name}"), format!("{value:e}")));
        }
    }
}

impl Default for PackageParams {
    fn default() -> Self {
        PackageParams::hotspot_default()
    }
}

/// Grid resolution and regulator-heating parameters of the thermal model.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Cooling package.
    pub package: PackageParams,
    /// Spreading (self-heating) resistance of one component regulator
    /// above its silicon cell, K/W.
    ///
    /// The bare analytic value for a 0.2 mm × 0.2 mm source on bulk
    /// silicon is `≈ 1/(2·k_si·a) ≈ 19 K/W`, but the regulator's power
    /// and metal stack spread its heat over most of the grid cell, and
    /// HotSpot-class grid models (which the paper uses) resolve
    /// regulators at cell granularity. The default therefore keeps only
    /// a small residual sub-cell bump; raise it to study
    /// self-heating-dominated designs.
    pub vr_self_resistance: f64,
    /// Solver family for the steady-state and transient systems.
    ///
    /// Constructors default this to [`SolverBackend::env_default`]
    /// (`SIMKIT_SOLVER` override, else [`SolverBackend::Auto`]): under
    /// `Auto`, steady scratches switch to the cached-LDLᵀ direct path
    /// after the break-even solve count, while transient steppers keep
    /// warm-started CG (the `C/Δt`-dominated system makes an iterative
    /// step cheaper than a triangular solve — BENCH.md). `Direct` pins
    /// the factored path everywhere, `Cg`/`GaussSeidel` the iterative
    /// solvers.
    pub solver: SolverBackend,
}

impl ThermalConfig {
    /// Production resolution: 64 × 64 grid (≈ 0.33 mm cells on the
    /// reference die).
    pub fn standard() -> Self {
        ThermalConfig {
            nx: 64,
            ny: 64,
            package: PackageParams::default(),
            vr_self_resistance: 3.0,
            solver: SolverBackend::env_default(),
        }
    }

    /// Coarse 32 × 32 grid for tests and quick exploration.
    pub fn coarse() -> Self {
        ThermalConfig {
            nx: 32,
            ny: 32,
            ..ThermalConfig::standard()
        }
    }

    /// Appends every field (grid, solver, package) as canonical
    /// `(<prefix><name>, value)` pairs for content hashing.
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        out.push((format!("{prefix}nx"), self.nx.to_string()));
        out.push((format!("{prefix}ny"), self.ny.to_string()));
        out.push((
            format!("{prefix}vr_self_resistance"),
            format!("{:e}", self.vr_self_resistance),
        ));
        out.push((format!("{prefix}solver"), self.solver.name().to_string()));
        self.package
            .config_fields(&format!("{prefix}package."), out);
    }
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = PackageParams::default();
        assert!(p.k_silicon > 100.0 && p.k_silicon < 160.0);
        assert!(p.k_spreader > p.k_silicon);
        assert!(p.ambient.get() == 45.0);
        assert!(p.convection_resistance > 0.0);
    }

    #[test]
    fn improved_cooling_is_actually_better() {
        let base = PackageParams::hotspot_default();
        let better = PackageParams::improved_cooling();
        assert!(better.convection_resistance < base.convection_resistance);
        assert!(better.sink_base_resistance < base.sink_base_resistance);
    }

    #[test]
    fn standard_config_resolution() {
        let c = ThermalConfig::standard();
        assert_eq!((c.nx, c.ny), (64, 64));
        let coarse = ThermalConfig::coarse();
        assert_eq!((coarse.nx, coarse.ny), (32, 32));
        assert_eq!(coarse.package, c.package);
    }

    #[test]
    fn vr_self_resistance_is_a_residual_bump() {
        // The analytic point-source value is ≈ 19 K/W, but the grid cell
        // resolves most of the spreading; the default keeps a small
        // positive residual well below the analytic bound.
        let c = ThermalConfig::default();
        assert!(c.vr_self_resistance > 0.0 && c.vr_self_resistance < 19.0);
    }
}
