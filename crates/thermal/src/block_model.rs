//! Block-mode compact thermal model.
//!
//! HotSpot ships two compact models: the fine *grid* mode
//! ([`crate::ThermalModel`]) and a coarse *block* mode whose RC network
//! has one node per floorplan block. Block mode is orders of magnitude
//! faster and is the classic choice for early design-space exploration;
//! this module provides it with the same package stack and a compatible
//! API, so exploration sweeps can run block-mode and switch to grid mode
//! for the final numbers.
//!
//! Lateral conductances connect blocks that share a boundary, sized by
//! the shared edge length and the center-to-center distance; each block
//! also has a vertical path through TIM/spreader to the shared sink.

use crate::config::{PackageParams, ThermalConfig};
use floorplan::{Block, BlockId, Floorplan};
use simkit::linalg::{CsrMatrix, TripletBuilder};
use simkit::units::{Celsius, Seconds, Watts};
use simkit::{Error, Result};

/// A block-granularity compact thermal model.
///
/// # Examples
///
/// ```
/// use thermal::BlockThermalModel;
/// use floorplan::reference::power8_like;
/// use simkit::units::Watts;
///
/// let chip = power8_like();
/// let model = BlockThermalModel::new(&chip, thermal::PackageParams::default());
/// let powers = vec![Watts::new(2.0); chip.blocks().len()];
/// let temps = model.steady_state(&powers)?;
/// assert!(temps.iter().all(|t| t.get() > 45.0));
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockThermalModel {
    package: PackageParams,
    n_blocks: usize,
    /// Nodes: blocks, then one spreader node per block, then the sink.
    n_nodes: usize,
    conductance: CsrMatrix,
    capacitance: Vec<f64>,
    g_convection: f64,
    /// For each regulator: its containing (or nearest) block.
    vr_blocks: Vec<usize>,
    vr_self_resistance: f64,
}

impl BlockThermalModel {
    /// Assembles the block-granularity network for `chip`.
    pub fn new(chip: &Floorplan, package: PackageParams) -> Self {
        let blocks = chip.blocks();
        let n_blocks = blocks.len();
        let n_nodes = 2 * n_blocks + 1;
        let sink = 2 * n_blocks;
        let p = &package;

        let mut g = TripletBuilder::new(n_nodes, n_nodes);
        let mut add_edge = |a: usize, b: usize, cond: f64| {
            g.add(a, a, cond);
            g.add(b, b, cond);
            g.add(a, b, -cond);
            g.add(b, a, -cond);
        };

        // Lateral silicon conduction between boundary-sharing blocks.
        for (i, a) in blocks.iter().enumerate() {
            for (j, b) in blocks.iter().enumerate().skip(i + 1) {
                let shared = shared_boundary_m(a, b);
                if shared <= 0.0 {
                    continue;
                }
                let distance = a.rect().center().distance(b.rect().center()).get();
                let cond = p.k_silicon * p.t_silicon * shared / distance.max(1e-6);
                add_edge(i, j, cond);
            }
        }

        let total_die_area: f64 = blocks.iter().map(|b| b.rect().area()).sum();
        for (i, block) in blocks.iter().enumerate() {
            let area = block.rect().area();
            // Vertical: half silicon + TIM + half spreader.
            let r_vert = (p.t_silicon / 2.0) / (p.k_silicon * area)
                + p.t_tim / (p.k_tim * area)
                + (p.t_spreader / 2.0) / (p.k_spreader * area);
            add_edge(i, n_blocks + i, 1.0 / r_vert);
            // Spreader to sink: half spreader + the block's share of the
            // sink base resistance.
            let r_sink = (p.t_spreader / 2.0) / (p.k_spreader * area)
                + p.sink_base_resistance * total_die_area / area;
            add_edge(n_blocks + i, sink, 1.0 / r_sink);
        }
        // Spreader nodes also conduct laterally (copper smoothing).
        for (i, a) in blocks.iter().enumerate() {
            for (j, b) in blocks.iter().enumerate().skip(i + 1) {
                let shared = shared_boundary_m(a, b);
                if shared <= 0.0 {
                    continue;
                }
                let distance = a.rect().center().distance(b.rect().center()).get();
                let cond = p.k_spreader * p.t_spreader * shared / distance.max(1e-6);
                add_edge(n_blocks + i, n_blocks + j, cond);
            }
        }
        let g_convection = 1.0 / p.convection_resistance;
        g.add(sink, sink, g_convection);
        let conductance = g.build();

        let mut capacitance: Vec<f64> = blocks
            .iter()
            .map(|b| p.c_silicon * b.rect().area() * p.t_silicon)
            .collect();
        capacitance.extend(
            blocks
                .iter()
                .map(|b| p.c_spreader * b.rect().area() * p.t_spreader),
        );
        capacitance.push(p.sink_capacitance);

        let vr_blocks = chip
            .vr_sites()
            .iter()
            .map(|site| {
                chip.nearest_block(site.center())
                    .expect("floorplan has blocks")
                    .id()
                    .0
            })
            .collect();

        BlockThermalModel {
            package,
            n_blocks,
            n_nodes,
            conductance,
            capacitance,
            g_convection,
            vr_blocks,
            vr_self_resistance: ThermalConfig::default().vr_self_resistance,
        }
    }

    /// The package parameters.
    pub fn package(&self) -> &PackageParams {
        &self.package
    }

    /// Number of floorplan blocks (temperature nodes on the die).
    pub fn block_count(&self) -> usize {
        self.n_blocks
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.package.ambient
    }

    /// The block a regulator's conversion loss flows into.
    ///
    /// # Panics
    ///
    /// Panics when `vr` is out of range.
    pub fn vr_block(&self, vr: usize) -> BlockId {
        BlockId(self.vr_blocks[vr])
    }

    /// Steady-state block temperatures for per-block powers (watts); VR
    /// losses should be pre-added onto their blocks (see
    /// [`BlockThermalModel::vr_block`]).
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `block_powers` does not have
    ///   one entry per block;
    /// * solver failures are propagated.
    pub fn steady_state(&self, block_powers: &[Watts]) -> Result<Vec<Celsius>> {
        if block_powers.len() != self.n_blocks {
            return Err(Error::DimensionMismatch {
                expected: self.n_blocks,
                actual: block_powers.len(),
            });
        }
        let mut rhs = vec![0.0; self.n_nodes];
        for (i, p) in block_powers.iter().enumerate() {
            rhs[i] = p.get().max(0.0);
        }
        rhs[self.n_nodes - 1] += self.g_convection * self.ambient().get();
        let x0 = vec![self.ambient().get(); self.n_nodes];
        let temps = self.conductance.solve_cg(&rhs, Some(&x0), 1e-10, 10_000)?;
        Ok(temps[..self.n_blocks]
            .iter()
            .map(|&t| Celsius::new(t))
            .collect())
    }

    /// One backward-Euler transient step of length `dt`, updating
    /// `node_temps` (length [`BlockThermalModel::node_count`], obtain the
    /// initial vector from [`BlockThermalModel::ambient_nodes`]).
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on wrong vector lengths;
    /// * solver failures are propagated.
    pub fn step(&self, node_temps: &mut [f64], block_powers: &[Watts], dt: Seconds) -> Result<()> {
        if node_temps.len() != self.n_nodes {
            return Err(Error::DimensionMismatch {
                expected: self.n_nodes,
                actual: node_temps.len(),
            });
        }
        if block_powers.len() != self.n_blocks {
            return Err(Error::DimensionMismatch {
                expected: self.n_blocks,
                actual: block_powers.len(),
            });
        }
        // A = G + C/dt assembled on the fly (block-mode matrices are tiny).
        let mut b = TripletBuilder::new(self.n_nodes, self.n_nodes);
        for (row, col, val) in self.conductance.iter_entries() {
            b.add(row, col, val);
        }
        for (i, &c) in self.capacitance.iter().enumerate() {
            b.add(i, i, c / dt.get());
        }
        let a = b.build();
        let mut rhs = vec![0.0; self.n_nodes];
        for (i, p) in block_powers.iter().enumerate() {
            rhs[i] = p.get().max(0.0);
        }
        rhs[self.n_nodes - 1] += self.g_convection * self.ambient().get();
        for i in 0..self.n_nodes {
            rhs[i] += self.capacitance[i] / dt.get() * node_temps[i];
        }
        let mut x = node_temps.to_vec();
        a.solve_gauss_seidel(&rhs, &mut x, 1.1, 1e-8, 5_000)?;
        node_temps.copy_from_slice(&x);
        Ok(())
    }

    /// Total node count (blocks + spreader nodes + sink).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// A uniformly-ambient node-temperature vector for transients.
    pub fn ambient_nodes(&self) -> Vec<f64> {
        vec![self.ambient().get(); self.n_nodes]
    }

    /// Regulator temperature: its block's temperature plus self-heating.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn vr_temperature(&self, block_temps: &[Celsius], vr: usize, loss: Watts) -> Celsius {
        let t = block_temps[self.vr_blocks[vr]];
        Celsius::new(t.get() + self.vr_self_resistance * loss.get().max(0.0))
    }
}

/// Length (m) of the boundary two blocks share (0 when not adjacent).
fn shared_boundary_m(a: &Block, b: &Block) -> f64 {
    let ra = a.rect();
    let rb = b.rect();
    const EPS: f64 = 1e-9;
    // Vertical shared edge: x-faces touch, y-ranges overlap.
    let x_touch = (ra.right().get() - rb.origin.x.get()).abs() < EPS
        || (rb.right().get() - ra.origin.x.get()).abs() < EPS;
    if x_touch {
        let overlap = ra.top().get().min(rb.top().get()) - ra.origin.y.get().max(rb.origin.y.get());
        if overlap > EPS {
            return overlap;
        }
    }
    // Horizontal shared edge: y-faces touch, x-ranges overlap.
    let y_touch = (ra.top().get() - rb.origin.y.get()).abs() < EPS
        || (rb.top().get() - ra.origin.y.get()).abs() < EPS;
    if y_touch {
        let overlap =
            ra.right().get().min(rb.right().get()) - ra.origin.x.get().max(rb.origin.x.get());
        if overlap > EPS {
            return overlap;
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PowerMap, ThermalModel};
    use floorplan::reference::power8_like;

    fn model() -> (floorplan::Floorplan, BlockThermalModel) {
        let chip = power8_like();
        let model = BlockThermalModel::new(&chip, PackageParams::default());
        (chip, model)
    }

    #[test]
    fn zero_power_rests_at_ambient() {
        let (chip, model) = model();
        let temps = model
            .steady_state(&vec![Watts::ZERO; chip.blocks().len()])
            .unwrap();
        for t in temps {
            assert!((t.get() - 45.0).abs() < 1e-6);
        }
    }

    #[test]
    fn adjacency_detection_on_reference_chip() {
        let chip = power8_like();
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.EXU")
            .unwrap();
        let isu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.ISU")
            .unwrap();
        let far = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core3.EXU")
            .unwrap();
        assert!(shared_boundary_m(exu, isu) > 0.0);
        assert_eq!(shared_boundary_m(exu, far), 0.0);
    }

    #[test]
    fn hotspot_forms_under_concentrated_power() {
        let (chip, model) = model();
        let mut powers = vec![Watts::new(0.5); chip.blocks().len()];
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.EXU")
            .unwrap();
        powers[exu.id().0] = Watts::new(15.0);
        let temps = model.steady_state(&powers).unwrap();
        let hottest = temps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(hottest, exu.id().0);
    }

    #[test]
    fn block_mode_tracks_grid_mode_within_a_band() {
        // The two models share package physics; their mean/maximum
        // temperatures for the same power map should agree within a few
        // degrees (block mode cannot resolve intra-block hotspots).
        let chip = power8_like();
        let block_model = BlockThermalModel::new(&chip, PackageParams::default());
        let grid_model = ThermalModel::new(&chip, ThermalConfig::coarse());

        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(2.5)
                } else {
                    Watts::new(0.8)
                }
            })
            .collect();
        let block_temps = block_model.steady_state(&powers).unwrap();
        let mut pm = PowerMap::new(&grid_model);
        for (block, &p) in chip.blocks().iter().zip(&powers) {
            pm.add_block(block.id(), p).unwrap();
        }
        let grid_state = grid_model.steady_state(&pm).unwrap();

        let block_max = block_temps.iter().map(|t| t.get()).fold(f64::MIN, f64::max);
        let grid_max = grid_state.max_silicon().get();
        assert!(
            (block_max - grid_max).abs() < 5.0,
            "block {block_max} vs grid {grid_max}"
        );
        let block_mean =
            block_temps.iter().map(|t| t.get()).sum::<f64>() / block_temps.len() as f64;
        let grid_mean = grid_state.mean_silicon().get();
        assert!(
            (block_mean - grid_mean).abs() < 5.0,
            "block {block_mean} vs grid {grid_mean}"
        );
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (chip, model) = model();
        let powers = vec![Watts::new(1.5); chip.blocks().len()];
        let steady = model.steady_state(&powers).unwrap();
        let mut nodes = model.ambient_nodes();
        for _ in 0..80 {
            model.step(&mut nodes, &powers, Seconds::new(2.0)).unwrap();
        }
        let max_now = nodes[..model.block_count()]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        let max_steady = steady.iter().map(|t| t.get()).fold(f64::MIN, f64::max);
        assert!(
            (max_now - max_steady).abs() < 0.5,
            "{max_now} vs {max_steady}"
        );
    }

    #[test]
    fn vr_losses_map_to_their_blocks() {
        let (chip, model) = model();
        for (vr, site) in chip.vr_sites().iter().enumerate() {
            let block = model.vr_block(vr);
            // The mapped block must belong to a domain... specifically
            // contain or neighbor the site.
            let rect = chip.block(block).rect();
            let d = rect.center().distance(site.center()).as_mm();
            assert!(d < 12.0, "VR{vr} mapped {d} mm away");
        }
        let temps = vec![Celsius::new(60.0); chip.blocks().len()];
        let t = model.vr_temperature(&temps, 0, Watts::new(0.2));
        assert!(t.get() > 60.0);
    }

    #[test]
    fn wrong_power_length_is_rejected() {
        let (_, model) = model();
        assert!(model.steady_state(&[Watts::ZERO]).is_err());
        let mut nodes = model.ambient_nodes();
        assert!(model
            .step(&mut nodes, &[Watts::ZERO], Seconds::new(0.1))
            .is_err());
        let mut bad_nodes = vec![45.0; 3];
        let powers = vec![Watts::ZERO; model.block_count()];
        assert!(model
            .step(&mut bad_nodes, &powers, Seconds::new(0.1))
            .is_err());
    }
}
