//! Thermal network assembly and solvers.

use crate::config::ThermalConfig;
use crate::map::PowerMap;
use crate::state::ThermalState;
use floorplan::{BlockId, Floorplan, VrId};
use simkit::linalg::multigrid::MGCG_MIN_NODES;
use simkit::linalg::{
    CgWorkspace, CsrMatrix, GridGeometry, GsWorkspace, JacobiPreconditioner, LdltFactor,
    LdltWorkspace, MultigridPreconditioner, Preconditioner, SolveStats, SolverBackend,
    TripletBuilder, DIRECT_BREAK_EVEN,
};
use simkit::perf::SolverAgg;
use simkit::telemetry::Telemetry;
use simkit::units::{Celsius, Seconds, Watts};
use simkit::{Error, Result};
use std::time::Instant;

/// The assembled compact thermal model of one chip.
///
/// Node layout: `nx·ny` silicon cells (row-major from the lower-left),
/// then `nx·ny` spreader cells, then one lumped sink node.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    config: ThermalConfig,
    nx: usize,
    ny: usize,
    n_cells: usize,
    n_nodes: usize,
    /// Cell footprint area, m².
    cell_area: f64,
    conductance: CsrMatrix,
    /// Jacobi preconditioner of `conductance`, built once at assembly and
    /// shared by every steady-state solve.
    conductance_pre: JacobiPreconditioner,
    capacitance: Vec<f64>,
    g_convection: f64,
    /// Per block: `(silicon cell, fraction of block area)` covering it.
    block_cells: Vec<Vec<(usize, f64)>>,
    /// Per regulator: its containing silicon cell.
    vr_cells: Vec<usize>,
    die_origin_m: (f64, f64),
    cell_size_m: (f64, f64),
    telemetry: Telemetry,
}

impl ThermalModel {
    /// Discretises `chip` and assembles the RC network.
    ///
    /// # Panics
    ///
    /// Panics when the grid resolution is zero.
    pub fn new(chip: &Floorplan, config: ThermalConfig) -> Self {
        assert!(config.nx > 0 && config.ny > 0, "grid must be non-empty");
        let nx = config.nx;
        let ny = config.ny;
        let n_cells = nx * ny;
        let n_nodes = 2 * n_cells + 1;
        let sink = 2 * n_cells;

        let die = chip.die();
        let die_w = die.width.get();
        let die_h = die.height.get();
        let cell_w = die_w / nx as f64;
        let cell_h = die_h / ny as f64;
        let cell_area = cell_w * cell_h;
        let p = &config.package;

        // --- Conductances -------------------------------------------------
        let g_lat_si_x = p.k_silicon * p.t_silicon * (cell_h / cell_w);
        let g_lat_si_y = p.k_silicon * p.t_silicon * (cell_w / cell_h);
        let g_lat_sp_x = p.k_spreader * p.t_spreader * (cell_h / cell_w);
        let g_lat_sp_y = p.k_spreader * p.t_spreader * (cell_w / cell_h);

        let r_si_half = (p.t_silicon / 2.0) / (p.k_silicon * cell_area);
        let r_tim = p.t_tim / (p.k_tim * cell_area);
        let r_sp_half = (p.t_spreader / 2.0) / (p.k_spreader * cell_area);
        let g_vert_si_sp = 1.0 / (r_si_half + r_tim + r_sp_half);
        let r_sp_sink = r_sp_half + p.sink_base_resistance * n_cells as f64;
        let g_vert_sp_sink = 1.0 / r_sp_sink;
        let g_convection = 1.0 / p.convection_resistance;

        let mut g = TripletBuilder::new(n_nodes, n_nodes);
        let mut add_edge = |a: usize, b: usize, cond: f64| {
            g.add(a, a, cond);
            g.add(b, b, cond);
            g.add(a, b, -cond);
            g.add(b, a, -cond);
        };
        for j in 0..ny {
            for i in 0..nx {
                let c = j * nx + i;
                let sp = n_cells + c;
                if i + 1 < nx {
                    add_edge(c, c + 1, g_lat_si_x);
                    add_edge(sp, sp + 1, g_lat_sp_x);
                }
                if j + 1 < ny {
                    add_edge(c, c + nx, g_lat_si_y);
                    add_edge(sp, sp + nx, g_lat_sp_y);
                }
                add_edge(c, sp, g_vert_si_sp);
                add_edge(sp, sink, g_vert_sp_sink);
            }
        }
        // Convection to ambient: diagonal-only (ambient enters the rhs).
        g.add(sink, sink, g_convection);
        let conductance = g.build();
        let conductance_pre = JacobiPreconditioner::new(&conductance)
            .expect("grid conductance matrix has a full diagonal");

        // --- Capacitances --------------------------------------------------
        let c_si = p.c_silicon * cell_area * p.t_silicon;
        let c_sp = p.c_spreader * cell_area * p.t_spreader;
        let mut capacitance = vec![c_si; n_cells];
        capacitance.extend(std::iter::repeat_n(c_sp, n_cells));
        capacitance.push(p.sink_capacitance);

        // --- Geometry maps --------------------------------------------------
        let tiles = die.tiles(nx, ny);
        let block_cells = chip
            .blocks()
            .iter()
            .map(|block| {
                let rect = block.rect();
                let area = rect.area();
                let mut cover = Vec::new();
                // Only scan the tile range the block can touch.
                let x0 = ((rect.origin.x.get() - die.origin.x.get()) / cell_w).floor() as usize;
                let y0 = ((rect.origin.y.get() - die.origin.y.get()) / cell_h).floor() as usize;
                let x1 =
                    (((rect.right().get() - die.origin.x.get()) / cell_w).ceil() as usize).min(nx);
                let y1 =
                    (((rect.top().get() - die.origin.y.get()) / cell_h).ceil() as usize).min(ny);
                for j in y0..y1 {
                    for i in x0..x1 {
                        let idx = j * nx + i;
                        let overlap = tiles[idx].intersection_area(&rect);
                        if overlap > 0.0 {
                            cover.push((idx, overlap / area));
                        }
                    }
                }
                cover
            })
            .collect();
        let vr_cells = chip
            .vr_sites()
            .iter()
            .map(|site| {
                let cx = site.center().x.get() - die.origin.x.get();
                let cy = site.center().y.get() - die.origin.y.get();
                let i = ((cx / cell_w) as usize).min(nx - 1);
                let j = ((cy / cell_h) as usize).min(ny - 1);
                j * nx + i
            })
            .collect();

        ThermalModel {
            config,
            nx,
            ny,
            n_cells,
            n_nodes,
            cell_area,
            conductance,
            conductance_pre,
            capacitance,
            g_convection,
            block_cells,
            vr_cells,
            die_origin_m: (die.origin.x.get(), die.origin.y.get()),
            cell_size_m: (cell_w, cell_h),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; steady solves emit
    /// `thermal.steady_cg` solve events and steppers created afterwards
    /// emit per-step `thermal.gs` solve events plus a
    /// `thermal.max_silicon_c` hotspot gauge.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The configuration used to build this model.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Grid resolution `(nx, ny)`.
    pub fn grid_size(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of silicon cells.
    pub fn cell_count(&self) -> usize {
        self.n_cells
    }

    /// Total RC-network node count (silicon + spreader + sink).
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Footprint area of one silicon cell, m².
    pub fn cell_area(&self) -> f64 {
        self.cell_area
    }

    /// The assembled steady-state conductance matrix `G` (SPD, one row
    /// per node) — exposed for differential solver verification and
    /// benchmarking on real thermal systems.
    pub fn conductance_matrix(&self) -> &CsrMatrix {
        &self.conductance
    }

    /// The node layout as a multigrid [`GridGeometry`]: two stacked
    /// `nx × ny` layers (silicon, spreader) plus the lumped sink node.
    pub fn grid_geometry(&self) -> GridGeometry {
        GridGeometry::new(self.nx, self.ny, 2, 1)
    }

    /// Ambient temperature of the package.
    pub fn ambient(&self) -> Celsius {
        self.config.package.ambient
    }

    /// `(cell, fraction)` coverage of a block over the silicon grid.
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range.
    pub(crate) fn block_coverage(&self, block: BlockId) -> &[(usize, f64)] {
        &self.block_cells[block.0]
    }

    /// The silicon cell containing a regulator site.
    ///
    /// # Panics
    ///
    /// Panics when the regulator id is out of range.
    pub(crate) fn vr_cell(&self, vr: VrId) -> usize {
        self.vr_cells[vr.0]
    }

    /// The silicon cell containing a die point (clamped to the grid).
    pub(crate) fn cell_of_point(&self, x_m: f64, y_m: f64) -> usize {
        let i = (((x_m - self.die_origin_m.0) / self.cell_size_m.0) as usize).min(self.nx - 1);
        let j = (((y_m - self.die_origin_m.1) / self.cell_size_m.1) as usize).min(self.ny - 1);
        j * self.nx + i
    }

    /// The self-heating temperature rise of a regulator above its cell,
    /// per watt of conversion loss.
    pub fn vr_self_resistance(&self) -> f64 {
        self.config.vr_self_resistance
    }

    /// A uniformly-ambient initial state.
    pub fn ambient_state(&self) -> ThermalState {
        ThermalState::uniform(self, self.ambient())
    }

    /// Writes the steady/transient right-hand side into `b` without
    /// allocating: injected power per node, plus the convection path to
    /// ambient on the sink node.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `b` has the wrong length.
    fn rhs_into(&self, power: &PowerMap, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.n_nodes);
        b.copy_from_slice(power.values());
        b[self.n_nodes - 1] += self.g_convection * self.ambient().get();
    }

    /// Convective heat flowing out of the package in a given state:
    /// `g_conv · (T_sink − T_ambient)`.
    ///
    /// At steady state the first law demands this equals the total
    /// injected power ([`PowerMap::total`]) — the energy-balance
    /// invariant `tg-verify` machine-checks; during a transient the
    /// difference is the heat still charging the RC network.
    pub fn heat_outflow(&self, state: &ThermalState) -> Watts {
        Watts::new(self.g_convection * (state.sink_temperature().get() - self.ambient().get()))
    }

    /// Relative residual `‖b(P) − G·T‖ / ‖b(P)‖` of a candidate
    /// steady-state temperature field against this model's conductance
    /// system — zero (up to solver tolerance) exactly when `state` solves
    /// the steady-state balance for `power`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `state` was built for another model.
    pub fn balance_residual(&self, power: &PowerMap, state: &ThermalState) -> f64 {
        debug_assert_eq!(state.raw().len(), self.n_nodes);
        let mut b = vec![0.0; self.n_nodes];
        self.rhs_into(power, &mut b);
        self.conductance.relative_residual(&b, state.raw())
    }

    /// Steady-state temperatures under a fixed power map.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`Error::NonConverged`]) — which do not
    /// occur for physical (non-negative, finite) power maps.
    pub fn steady_state(&self, power: &PowerMap) -> Result<ThermalState> {
        let mut state = self.ambient_state();
        let mut scratch = SteadyScratch::default();
        self.steady_state_with_scratch(power, &mut state, &mut scratch)?;
        Ok(state)
    }

    /// Steady-state solve writing into an existing state, warm-started
    /// from that state's current temperatures, with every scratch buffer
    /// caller-supplied — the allocation-free path for repeated solves
    /// (leakage feedback, per-decision oracle previews). Returns the
    /// CG convergence statistics.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`Error::NonConverged`]).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `state` was built for another model.
    pub fn steady_state_with_scratch(
        &self,
        power: &PowerMap,
        state: &mut ThermalState,
        scratch: &mut SteadyScratch,
    ) -> Result<SolveStats> {
        debug_assert_eq!(state.raw().len(), self.n_nodes);
        scratch.rhs.resize(self.n_nodes, 0.0);
        self.rhs_into(power, &mut scratch.rhs);
        let solves_so_far = scratch.solves;
        scratch.solves += 1;
        // Grid-size-aware backend policy. Below the measured multigrid
        // crossover, the PR-5 break-even rule stands: the conductance
        // matrix is fixed for the model's lifetime, so once a scratch has
        // carried enough iterative solves to prove the system is solved
        // repeatedly (leakage feedback, per-decision previews), one
        // factorization amortises over every remaining solve. Past the
        // crossover — where min-degree fill-in makes factoring the fine
        // matrix prohibitively expensive and Jacobi-CG iteration counts
        // track the grid diameter — Auto switches to multigrid-CG from
        // the first solve (the hierarchy setup costs about one Jacobi-CG
        // solve; see DESIGN.md §12).
        let use_mgcg = match self.config.solver {
            SolverBackend::Mgcg => true,
            SolverBackend::Auto => self.n_nodes >= MGCG_MIN_NODES,
            _ => false,
        };
        let use_direct = !use_mgcg
            && match self.config.solver {
                SolverBackend::Direct => true,
                SolverBackend::Auto => solves_so_far >= DIRECT_BREAK_EVEN,
                SolverBackend::Cg | SolverBackend::Mgcg | SolverBackend::GaussSeidel => false,
            };
        if use_mgcg {
            let setup_started = Instant::now();
            let mut factor_s = 0.0;
            let cached = scratch.mg.as_ref().is_some_and(|m| {
                m.dim() == self.n_nodes && scratch.mg_values == self.conductance.values()
            });
            if !cached {
                let mg = MultigridPreconditioner::new(&self.conductance, self.grid_geometry())?;
                scratch.mg_values.clear();
                scratch
                    .mg_values
                    .extend_from_slice(self.conductance.values());
                scratch.mg = Some(mg);
                factor_s = setup_started.elapsed().as_secs_f64();
            }
            let mg = scratch.mg.as_ref().expect("hierarchy built above");
            let solve_started = Instant::now();
            let stats = self.conductance.solve_cg_with(
                &scratch.rhs,
                state.raw_mut(),
                mg,
                &mut scratch.cg,
                1e-10,
                20_000,
            )?;
            self.telemetry.solve_timed(
                "thermal.steady_mgcg",
                stats.iterations,
                stats.residual,
                "mgcg",
                factor_s,
                solve_started.elapsed().as_secs_f64(),
            );
            return Ok(stats);
        }
        if use_direct {
            let factor_started = Instant::now();
            let mut factor_s = 0.0;
            let cached = scratch.ldlt.as_ref().is_some_and(|f| {
                f.order() == self.n_nodes && scratch.ldlt_values == self.conductance.values()
            });
            if !cached {
                let factor = LdltFactor::new(&self.conductance)?;
                scratch.ldlt_values.clear();
                scratch
                    .ldlt_values
                    .extend_from_slice(self.conductance.values());
                scratch.ldlt = Some(factor);
                factor_s = factor_started.elapsed().as_secs_f64();
            }
            let solve_started = Instant::now();
            let factor = scratch.ldlt.as_ref().expect("factor built above");
            factor.solve_into(&scratch.rhs, state.raw_mut(), &mut scratch.ldlt_ws)?;
            let stats = LdltFactor::stats_for(&self.conductance, &scratch.rhs, state.raw());
            self.telemetry.solve_timed(
                "thermal.steady_direct",
                stats.iterations,
                stats.residual,
                "direct",
                factor_s,
                solve_started.elapsed().as_secs_f64(),
            );
            Ok(stats)
        } else {
            let solve_started = Instant::now();
            let stats = self.conductance.solve_cg_with(
                &scratch.rhs,
                state.raw_mut(),
                &self.conductance_pre,
                &mut scratch.cg,
                1e-10,
                20_000,
            )?;
            self.telemetry.solve_timed(
                "thermal.steady_cg",
                stats.iterations,
                stats.residual,
                "cg",
                0.0,
                solve_started.elapsed().as_secs_f64(),
            );
            Ok(stats)
        }
    }

    /// Iterates steady-state solves against a temperature-dependent power
    /// map (the HotSpot-in-a-feedback-loop methodology of Section 5:
    /// leakage depends on temperature, temperature depends on power) until
    /// the hottest node moves less than `tol_c` between iterations.
    ///
    /// Returns the converged state and a [`FeedbackStats`] carrying the
    /// number of feedback iterations plus the aggregated inner-CG
    /// convergence statistics.
    ///
    /// # Errors
    ///
    /// * Solver failures are propagated;
    /// * [`Error::NonConverged`] when `max_iter` passes do not reach
    ///   `tol_c` (the reported residual is the last inter-iteration
    ///   temperature movement in °C).
    pub fn steady_state_with_feedback<'s, F>(
        &'s self,
        max_iter: usize,
        tol_c: f64,
        mut power_of: F,
    ) -> Result<(ThermalState, FeedbackStats)>
    where
        F: FnMut(&ThermalState) -> Result<PowerMap<'s>>,
    {
        let mut state = self.ambient_state();
        let mut next = self.ambient_state();
        let mut scratch = SteadyScratch::default();
        let mut cg = SolverAgg::default();
        let mut last_delta = f64::INFINITY;
        for iteration in 1..=max_iter {
            let power = power_of(&state)?;
            // Warm-start the solve from the previous iterate: the scratch
            // buffers and both states are reused across the loop.
            next.raw_mut().copy_from_slice(state.raw());
            cg.record(self.steady_state_with_scratch(&power, &mut next, &mut scratch)?);
            let delta = state.max_abs_difference(&next);
            last_delta = delta;
            std::mem::swap(&mut state, &mut next);
            if delta < tol_c {
                return Ok((
                    state,
                    FeedbackStats {
                        iterations: iteration,
                        cg,
                    },
                ));
            }
        }
        Err(Error::NonConverged {
            iterations: max_iter,
            residual: last_delta,
        })
    }

    /// Prepares a backward-Euler stepper for a fixed time step.
    ///
    /// The system `G + C/Δt` is fixed for the stepper's lifetime and
    /// solved once per thermal step. At simulation time steps the `C/Δt`
    /// diagonal dominates the stencil couplings, so a warm-started
    /// iterative step converges in a handful of iterations and beats
    /// streaming the LDLᵀ factor through a triangular solve (measured
    /// ≈16 µs vs ≈120 µs per step at 32×32 — see BENCH.md);
    /// [`SolverBackend::Auto`] therefore pins warm-started CG, and the
    /// direct stepper is an explicit `Direct` opt-in.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not positive.
    pub fn stepper(&self, dt: Seconds) -> TransientStepper<'_> {
        assert!(dt.get() > 0.0, "time step must be positive");
        // A = G + C/dt: same sparsity as G plus (already present) diagonal.
        let mut b = TripletBuilder::new(self.n_nodes, self.n_nodes);
        for row in 0..self.n_nodes {
            b.add(row, row, self.capacitance[row] / dt.get());
        }
        let a = add_matrices(&self.conductance, b.build());
        let factor_started = Instant::now();
        let solver = match self.config.solver {
            SolverBackend::Direct => TransientSolver::Direct {
                factor: LdltFactor::new(&a).expect("backward-Euler system is SPD"),
                ws: LdltWorkspace::new(),
            },
            SolverBackend::GaussSeidel => TransientSolver::Gs {
                ws: GsWorkspace::new(&a).expect("backward-Euler system has a full diagonal"),
            },
            SolverBackend::Mgcg => TransientSolver::Mgcg {
                pre: Box::new(
                    MultigridPreconditioner::new(&a, self.grid_geometry())
                        .expect("backward-Euler system is SPD"),
                ),
                ws: CgWorkspace::new(),
            },
            SolverBackend::Auto | SolverBackend::Cg => TransientSolver::Cg {
                pre: JacobiPreconditioner::new(&a)
                    .expect("backward-Euler system has a full diagonal"),
                ws: CgWorkspace::new(),
            },
        };
        TransientStepper {
            model: self,
            dt,
            system: a,
            solver,
            pending_factor_s: factor_started.elapsed().as_secs_f64(),
            rhs: vec![0.0; self.n_nodes],
            telemetry: self.telemetry.clone(),
        }
    }
}

/// Convergence summary of one [`ThermalModel::steady_state_with_feedback`]
/// loop: outer feedback iterations plus the aggregated inner CG solves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeedbackStats {
    /// Outer leakage-feedback iterations until the hottest node settled.
    pub iterations: usize,
    /// Aggregate over the inner steady-state CG solves.
    pub cg: SolverAgg,
}

/// Reusable scratch buffers for repeated steady-state solves: the
/// right-hand side, the CG workspace, and — once the
/// [`SolverBackend::Auto`] break-even count is cleared or the backend is
/// pinned to direct — the cached LDLᵀ factor of the conductance matrix
/// with its solve workspace. Default-constructed empty; sized on first
/// use and stable afterwards.
///
/// The factor cache is keyed by value comparison against the matrix it
/// was built from, so a scratch accidentally reused across models
/// rebuilds instead of solving the wrong system. Factor-cache lifetime
/// equals the scratch lifetime: per engine in simulation runs, which is
/// what keeps the parallel sweep executor's legs independent.
#[derive(Debug, Clone, Default)]
pub struct SteadyScratch {
    rhs: Vec<f64>,
    cg: CgWorkspace,
    /// Solves carried so far — the [`SolverBackend::Auto`] break-even counter.
    solves: usize,
    ldlt: Option<LdltFactor>,
    /// Values of the matrix `ldlt` was factored from (cache key).
    ldlt_values: Vec<f64>,
    ldlt_ws: LdltWorkspace,
    /// Multigrid hierarchy for the mgcg backend (and `Auto` past the
    /// grid-size crossover), cached like the LDLᵀ factor.
    mg: Option<MultigridPreconditioner>,
    /// Values of the matrix `mg` was built from (cache key).
    mg_values: Vec<f64>,
}

impl SteadyScratch {
    /// An empty scratch; buffers grow on first solve.
    pub fn new() -> Self {
        SteadyScratch::default()
    }

    /// Smallest capacity across the always-used scratch buffers
    /// (allocation-stability probe for tests).
    pub fn min_capacity(&self) -> usize {
        self.rhs.capacity().min(self.cg.min_capacity())
    }

    /// Whether the scratch currently holds a cached LDLᵀ factor.
    pub fn has_factor(&self) -> bool {
        self.ldlt.is_some()
    }
}

/// Adds two CSR matrices with identical dimensions (used to form
/// `G + C/Δt`).
fn add_matrices(a: &CsrMatrix, b: CsrMatrix) -> CsrMatrix {
    let mut out = TripletBuilder::new(a.rows(), a.cols());
    for (row, col, val) in a.iter_entries().chain(b.iter_entries()) {
        out.add(row, col, val);
    }
    out.build()
}

/// Per-backend solver state of a [`TransientStepper`]: the factor or
/// workspace is built once at [`ThermalModel::stepper`] time and reused
/// allocation-free by every step.
#[derive(Debug, Clone)]
enum TransientSolver {
    /// Cached LDLᵀ factor of `G + C/Δt` plus its solve workspace.
    Direct {
        factor: LdltFactor,
        ws: LdltWorkspace,
    },
    /// Multicolor Gauss–Seidel ordering and cached diagonal.
    Gs { ws: GsWorkspace },
    /// Jacobi preconditioner and CG scratch, warm-started per step.
    Cg {
        pre: JacobiPreconditioner,
        ws: CgWorkspace,
    },
    /// Multigrid hierarchy of `G + C/Δt` and CG scratch, warm-started
    /// per step. Boxed: the hierarchy dwarfs the other variants.
    Mgcg {
        pre: Box<MultigridPreconditioner>,
        ws: CgWorkspace,
    },
}

impl TransientSolver {
    /// Telemetry event name of the per-step solve.
    fn event_name(&self) -> &'static str {
        match self {
            TransientSolver::Direct { .. } => "thermal.transient_direct",
            TransientSolver::Gs { .. } => "thermal.gs",
            TransientSolver::Cg { .. } => "thermal.transient_cg",
            TransientSolver::Mgcg { .. } => "thermal.transient_mgcg",
        }
    }

    /// Stable backend name for the telemetry `backend` field.
    fn backend_name(&self) -> &'static str {
        match self {
            TransientSolver::Direct { .. } => SolverBackend::Direct.name(),
            TransientSolver::Gs { .. } => SolverBackend::GaussSeidel.name(),
            TransientSolver::Cg { .. } => SolverBackend::Cg.name(),
            TransientSolver::Mgcg { .. } => SolverBackend::Mgcg.name(),
        }
    }
}

/// A prepared backward-Euler integrator bound to one [`ThermalModel`] and
/// a fixed step size.
///
/// The system matrix `G + C/Δt`, its per-backend solver state (LDLᵀ
/// factor, Gauss–Seidel ordering, or CG preconditioner — see
/// [`ThermalConfig::solver`]), and the right-hand-side buffer are all
/// built once here, so [`TransientStepper::step`] performs no heap
/// allocation — the inner loop of every simulation run.
#[derive(Debug, Clone)]
pub struct TransientStepper<'m> {
    model: &'m ThermalModel,
    dt: Seconds,
    system: CsrMatrix,
    solver: TransientSolver,
    /// Factorization time not yet reported: attributed to the first
    /// step's solve event, zero afterwards.
    pending_factor_s: f64,
    rhs: Vec<f64>,
    telemetry: Telemetry,
}

impl TransientStepper<'_> {
    /// The fixed step size.
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// Telemetry event name this stepper's solves are reported under
    /// (`thermal.transient_direct`, `thermal.gs`, or
    /// `thermal.transient_cg`).
    pub fn solve_event_name(&self) -> &'static str {
        self.solver.event_name()
    }

    /// Advances `state` by one step under the given power map and
    /// returns the solver's convergence statistics (one "iteration" and
    /// the true relative residual for the direct backend).
    ///
    /// Solves in place: the state's own buffer is the warm start and the
    /// solution, and the right-hand side lives in the stepper.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; physical inputs converge.
    pub fn step(&mut self, state: &mut ThermalState, power: &PowerMap) -> Result<SolveStats> {
        let n = self.model.n_nodes;
        self.model.rhs_into(power, &mut self.rhs);
        let temps = state.raw();
        let inv_dt = 1.0 / self.dt.get();
        for ((r, &c), &t) in self.rhs[..n]
            .iter_mut()
            .zip(&self.model.capacitance)
            .zip(temps)
        {
            *r += c * inv_dt * t;
        }
        let solve_started = Instant::now();
        let stats = match &mut self.solver {
            TransientSolver::Direct { factor, ws } => {
                factor.solve_into(&self.rhs, state.raw_mut(), ws)?;
                LdltFactor::stats_for(&self.system, &self.rhs, state.raw())
            }
            TransientSolver::Gs { ws } => self.system.solve_gauss_seidel_colored(
                &self.rhs,
                state.raw_mut(),
                ws,
                1.1,
                1e-7,
                2_000,
            )?,
            // The sink node's C/Δt term dominates ‖b‖, so the relative
            // tolerance must be far below the steady 1e-10 to bound the
            // *absolute* temperature error on silicon nodes.
            TransientSolver::Cg { pre, ws } => self.system.solve_cg_with(
                &self.rhs,
                state.raw_mut(),
                pre,
                ws,
                1e-13,
                10 * n.max(1),
            )?,
            TransientSolver::Mgcg { pre, ws } => self.system.solve_cg_with(
                &self.rhs,
                state.raw_mut(),
                &**pre,
                ws,
                1e-13,
                10 * n.max(1),
            )?,
        };
        if self.telemetry.is_enabled() {
            self.telemetry.solve_timed(
                self.solver.event_name(),
                stats.iterations,
                stats.residual,
                self.solver.backend_name(),
                self.pending_factor_s,
                solve_started.elapsed().as_secs_f64(),
            );
            self.telemetry
                .gauge("thermal.max_silicon_c", state.max_silicon().get());
        }
        self.pending_factor_s = 0.0;
        Ok(stats)
    }

    /// Capacity of the right-hand-side scratch buffer (allocation-
    /// stability probe for tests).
    pub fn rhs_capacity(&self) -> usize {
        self.rhs.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::PowerMap;
    use floorplan::reference::power8_like;
    use simkit::units::Watts;

    fn setup() -> (floorplan::Floorplan, ThermalModel) {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        (chip, model)
    }

    #[test]
    fn zero_power_settles_at_ambient() {
        let (_, model) = setup();
        let power = PowerMap::new(&model);
        let state = model.steady_state(&power).unwrap();
        assert!((state.max_silicon().get() - 45.0).abs() < 1e-6);
        assert!((state.min_silicon().get() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_power_raises_mean_by_total_times_resistance() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        let total = 100.0;
        for block in chip.blocks() {
            power
                .add_block(block.id(), Watts::new(total / chip.blocks().len() as f64))
                .unwrap();
        }
        let state = model.steady_state(&power).unwrap();
        // Sink temperature ≈ ambient + P × (R_conv) and silicon sits above
        // that; with R_conv = 0.12 the sink alone adds 12 °C.
        let t_mean = state.mean_silicon().get();
        assert!(t_mean > 45.0 + total * 0.12, "mean {t_mean}");
        assert!(t_mean < 95.0, "mean {t_mean}");
    }

    #[test]
    fn hotspot_forms_under_concentrated_power() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        // Dump 20 W into one EXU only.
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.EXU")
            .unwrap();
        power.add_block(exu.id(), Watts::new(20.0)).unwrap();
        let state = model.steady_state(&power).unwrap();
        let t_exu = state.block_temperature(&model, exu.id());
        let far = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core3.EXU")
            .unwrap();
        let t_far = state.block_temperature(&model, far.id());
        assert!(
            t_exu.get() > t_far.get() + 5.0,
            "exu {t_exu} vs far {t_far}"
        );
        assert!(state.gradient() > 5.0);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.0)).unwrap();
        }
        let steady = model.steady_state(&power).unwrap();
        // The sink's RC time constant is ~17 s; backward Euler is
        // unconditionally stable, so march 120 simulated seconds in 2 s
        // steps to let the whole stack settle.
        let mut stepper = model.stepper(Seconds::new(2.0));
        let mut state = model.ambient_state();
        for _ in 0..60 {
            stepper.step(&mut state, &power).unwrap();
        }
        let gap = (steady.max_silicon().get() - state.max_silicon().get()).abs();
        assert!(gap < 0.5, "gap {gap}");
    }

    #[test]
    fn transient_step_moves_towards_heat() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.EXU")
            .unwrap();
        power.add_block(exu.id(), Watts::new(10.0)).unwrap();
        let mut stepper = model.stepper(Seconds::from_micros(100.0));
        let mut state = model.ambient_state();
        stepper.step(&mut state, &power).unwrap();
        let after_one = state.block_temperature(&model, exu.id());
        assert!(after_one.get() > 45.0);
        for _ in 0..9 {
            stepper.step(&mut state, &power).unwrap();
        }
        let after_ten = state.block_temperature(&model, exu.id());
        assert!(after_ten > after_one);
    }

    #[test]
    fn vr_self_heating_is_visible() {
        let (chip, model) = setup();
        let power = PowerMap::new(&model);
        let state = model.steady_state(&power).unwrap();
        let vr = chip.vr_sites()[0].id();
        let cold = state.vr_temperature(&model, vr, Watts::ZERO);
        let hot = state.vr_temperature(&model, vr, Watts::new(0.5));
        assert!((hot.get() - cold.get() - 0.5 * model.vr_self_resistance()).abs() < 1e-9);
    }

    #[test]
    fn feedback_loop_converges() {
        let (chip, model) = setup();
        let blocks: Vec<_> = chip.blocks().iter().map(|b| b.id()).collect();
        let (state, fb) = model
            .steady_state_with_feedback(50, 0.01, |state| {
                let mut pm = PowerMap::new(&model);
                for &b in &blocks {
                    // Mildly temperature-dependent power (like leakage).
                    let t = state.block_temperature(&model, b).get();
                    let p = 1.0 + 0.01 * (t - 45.0);
                    pm.add_block(b, Watts::new(p))?;
                }
                Ok(pm)
            })
            .unwrap();
        assert!(fb.iterations >= 2, "took {} iterations", fb.iterations);
        assert_eq!(fb.cg.solves as usize, fb.iterations);
        assert!(fb.cg.iterations > 0);
        assert!(fb.cg.max_residual.is_finite() && fb.cg.max_residual <= 1e-10);
        assert!(state.max_silicon().get() > 45.0);
    }

    #[test]
    fn stepper_emits_solve_events_and_hotspot_gauge() {
        use simkit::telemetry::{EventKind, Telemetry};

        let (chip, mut model) = setup();
        let (tel, sink) = Telemetry::recorder();
        model.set_telemetry(tel);
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.0)).unwrap();
        }
        let mut stepper = model.stepper(Seconds::from_micros(100.0));
        let mut state = model.ambient_state();
        for _ in 0..3 {
            stepper.step(&mut state, &power).unwrap();
        }
        assert_eq!(sink.count_kind(EventKind::Solve), 3);
        assert_eq!(sink.count_kind(EventKind::Gauge), 3);
        let events = sink.events();
        let step_event = stepper.solve_event_name();
        assert!(events.iter().any(|e| e.name == step_event));
        assert!(events.iter().any(|e| e.name == "thermal.max_silicon_c"));
        // Steady solves report through the same handle.
        let mut scratch = SteadyScratch::new();
        model
            .steady_state_with_scratch(&power, &mut state, &mut scratch)
            .unwrap();
        assert!(sink.events().iter().any(|e| e.name == "thermal.steady_cg"));
    }

    #[test]
    fn transient_backends_agree() {
        let chip = power8_like();
        let mut power = None;
        let mut states = Vec::new();
        for backend in [
            SolverBackend::Direct,
            SolverBackend::GaussSeidel,
            SolverBackend::Cg,
            SolverBackend::Mgcg,
        ] {
            let config = ThermalConfig {
                solver: backend,
                ..ThermalConfig::coarse()
            };
            let model = ThermalModel::new(&chip, config);
            let pm = power.get_or_insert_with(|| {
                let mut pm = std::collections::BTreeMap::new();
                for (i, block) in chip.blocks().iter().enumerate() {
                    pm.insert(block.id(), 0.5 + (i % 7) as f64 * 0.4);
                }
                pm
            });
            let mut map = PowerMap::new(&model);
            for (&b, &w) in pm.iter() {
                map.add_block(b, Watts::new(w)).unwrap();
            }
            let mut stepper = model.stepper(Seconds::from_micros(50.0));
            let mut state = model.ambient_state();
            for _ in 0..50 {
                stepper.step(&mut state, &map).unwrap();
            }
            states.push(state);
        }
        let direct = &states[0];
        for (other, name) in states[1..].iter().zip(["gs", "cg", "mgcg"]) {
            let gap = direct.max_abs_difference(other);
            assert!(gap < 1e-4, "direct vs {name} diverged by {gap} °C");
        }
    }

    #[test]
    fn steady_mgcg_matches_cg_and_caches_the_hierarchy() {
        let chip = power8_like();
        let config = ThermalConfig {
            solver: SolverBackend::Mgcg,
            ..ThermalConfig::coarse()
        };
        let model = ThermalModel::new(&chip, config);
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.5)).unwrap();
        }
        let reference = {
            let cg_model = ThermalModel::new(
                &chip,
                ThermalConfig {
                    solver: SolverBackend::Cg,
                    ..ThermalConfig::coarse()
                },
            );
            cg_model.steady_state(&power).unwrap()
        };
        let mut scratch = SteadyScratch::new();
        let mut state = model.ambient_state();
        let first = model
            .steady_state_with_scratch(&power, &mut state, &mut scratch)
            .unwrap();
        assert!(reference.max_abs_difference(&state) < 1e-5);
        // Warm second solve: the hierarchy is cached, no direct factor is
        // ever built, and a converged warm start exits immediately.
        let second = model
            .steady_state_with_scratch(&power, &mut state, &mut scratch)
            .unwrap();
        assert!(!scratch.has_factor());
        assert!(second.iterations <= first.iterations);
        // On the 32×32 model mgcg-CG must already beat Jacobi-CG's ~73
        // iterations by a wide margin (cold-start solve).
        assert!(
            first.iterations <= 25,
            "mgcg took {} iterations",
            first.iterations
        );
    }

    #[test]
    fn auto_selects_mgcg_only_past_the_grid_size_crossover() {
        use simkit::linalg::multigrid::MGCG_MIN_NODES;
        // The coarse test grid sits far below the crossover: Auto must
        // keep the warm-CG → direct break-even behaviour there (covered
        // by steady_auto_switches_to_direct_at_break_even) …
        let coarse = ThermalConfig::coarse();
        assert!(2 * coarse.nx * coarse.ny + 1 < MGCG_MIN_NODES);
        // … while a ≥10×-finer grid clears it, so Auto picks multigrid
        // from the first solve. Solve on a small-but-past-crossover grid
        // to keep the test fast and verify the mgcg path engaged (no
        // LDLᵀ factor, even past break-even solve counts).
        let side = ((MGCG_MIN_NODES / 2) as f64).sqrt() as usize + 1;
        let chip = power8_like();
        let config = ThermalConfig {
            nx: side,
            ny: side,
            solver: SolverBackend::Auto,
            ..ThermalConfig::standard()
        };
        let model = ThermalModel::new(&chip, config);
        assert!(model.node_count() >= MGCG_MIN_NODES);
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.0)).unwrap();
        }
        let mut scratch = SteadyScratch::new();
        let mut state = model.ambient_state();
        for _ in 0..3 {
            model
                .steady_state_with_scratch(&power, &mut state, &mut scratch)
                .unwrap();
        }
        assert!(scratch.mg.is_some(), "Auto did not engage multigrid");
        assert!(!scratch.has_factor(), "Auto factored past the crossover");
    }

    #[test]
    fn steady_auto_switches_to_direct_at_break_even() {
        use simkit::linalg::DIRECT_BREAK_EVEN;
        let chip = power8_like();
        let config = ThermalConfig {
            solver: SolverBackend::Auto,
            ..ThermalConfig::coarse()
        };
        let model = ThermalModel::new(&chip, config);
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.0)).unwrap();
        }
        let reference = model.steady_state(&power).unwrap();
        let mut scratch = SteadyScratch::new();
        let mut state = model.ambient_state();
        for solve in 1..=(DIRECT_BREAK_EVEN + 3) {
            model
                .steady_state_with_scratch(&power, &mut state, &mut scratch)
                .unwrap();
            assert_eq!(
                scratch.has_factor(),
                solve > DIRECT_BREAK_EVEN,
                "factor presence wrong after solve {solve}"
            );
            assert!(reference.max_abs_difference(&state) < 1e-5);
        }
    }

    #[test]
    fn block_coverage_fractions_sum_to_one() {
        let (chip, model) = setup();
        for block in chip.blocks() {
            let sum: f64 = model
                .block_coverage(block.id())
                .iter()
                .map(|&(_, f)| f)
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "block {}", block.name());
        }
    }

    #[test]
    fn node_counts() {
        let (_, model) = setup();
        assert_eq!(model.grid_size(), (32, 32));
        assert_eq!(model.cell_count(), 1024);
        assert_eq!(model.node_count(), 2049);
    }

    #[test]
    fn stepper_scratch_is_allocation_stable() {
        // The transient inner loop must not grow (or re-create) any
        // buffer after the first step: the rhs scratch capacity and the
        // state's own buffer address stay fixed across hundreds of steps.
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.5)).unwrap();
        }
        let mut stepper = model.stepper(Seconds::from_micros(20.0));
        let mut state = model.ambient_state();
        stepper.step(&mut state, &power).unwrap();
        let rhs_cap = stepper.rhs_capacity();
        let state_ptr = state.raw().as_ptr();
        for _ in 0..200 {
            stepper.step(&mut state, &power).unwrap();
        }
        assert_eq!(stepper.rhs_capacity(), rhs_cap);
        assert_eq!(state.raw().as_ptr(), state_ptr);
    }

    #[test]
    fn steady_scratch_is_allocation_stable() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(2.0)).unwrap();
        }
        let mut state = model.ambient_state();
        let mut scratch = SteadyScratch::new();
        model
            .steady_state_with_scratch(&power, &mut state, &mut scratch)
            .unwrap();
        let cap = scratch.min_capacity();
        assert!(cap >= model.node_count());
        for _ in 0..5 {
            model
                .steady_state_with_scratch(&power, &mut state, &mut scratch)
                .unwrap();
            assert_eq!(scratch.min_capacity(), cap);
        }
    }

    #[test]
    fn warm_started_steady_solve_matches_cold_solve() {
        let (chip, model) = setup();
        let mut power = PowerMap::new(&model);
        for block in chip.blocks() {
            power.add_block(block.id(), Watts::new(1.0)).unwrap();
        }
        let cold = model.steady_state(&power).unwrap();
        // Warm start from a very different state (a previous hot solve).
        let mut hot_power = PowerMap::new(&model);
        for block in chip.blocks() {
            hot_power.add_block(block.id(), Watts::new(4.0)).unwrap();
        }
        let mut state = model.steady_state(&hot_power).unwrap();
        let mut scratch = SteadyScratch::new();
        model
            .steady_state_with_scratch(&power, &mut state, &mut scratch)
            .unwrap();
        assert!(cold.max_abs_difference(&state) < 1e-5);
    }
}
