//! Benches of the ablation kernels: the gating-interval sensitivity
//! (footnote 5), the Walking-Pads-style placement optimisation
//! (Section 5), and the ΔT = θ·ΔP predictor calibration (Section 6.3).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use pdn::placement::optimize_placement;
use pdn::PdnConfig;
use simkit::units::{Seconds, Watts};
use std::hint::black_box;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn ablation_interval(c: &mut Criterion) {
    let chip = power8_like();
    let engine = SimulationEngine::new(
        &chip,
        EngineConfig {
            decision_interval: Seconds::from_micros(100.0),
            thermal_step: Seconds::from_micros(20.0),
            ..bench_config()
        },
    );
    let mut group = c.benchmark_group("ablation_interval/10x_shorter");
    group.sample_size(10);
    group.bench_function("lu_ncb_oract", |b| {
        b.iter(|| black_box(engine.run(Benchmark::LuNcb, PolicyKind::OracT).unwrap()))
    });
    group.finish();
}

fn ablation_placement(c: &mut Criterion) {
    let chip = power8_like();
    let powers: Vec<Watts> = chip
        .blocks()
        .iter()
        .map(|b| {
            if b.kind().is_logic() {
                Watts::new(2.0)
            } else {
                Watts::new(0.5)
            }
        })
        .collect();
    let mut group = c.benchmark_group("ablation_placement/one_pass");
    group.sample_size(10);
    group.bench_function("walking_pads", |b| {
        b.iter(|| {
            let mut local = chip.clone();
            black_box(
                optimize_placement(&mut local, &PdnConfig::reference(), &powers, 0.5, 1).unwrap(),
            )
        })
    });
    group.finish();
}

fn ablation_r2(c: &mut Criterion) {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, bench_config());
    let mut group = c.benchmark_group("ablation_r2/calibration");
    group.sample_size(10);
    group.bench_function("lu_ncb", |b| {
        b.iter(|| black_box(engine.calibrate_predictor(Benchmark::LuNcb).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, ablation_interval, ablation_placement, ablation_r2);
criterion_main!(benches);
