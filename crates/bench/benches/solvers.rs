//! Micro-benchmarks of the numerical kernels every experiment leans on:
//! the thermal steady-state CG solve, the backward-Euler transient step,
//! the PDN IR-drop solve, the transient-noise convolution, and workload
//! trace generation.

use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use pdn::transient::{peak_transient_fraction, TransientParams};
use pdn::{PdnConfig, PdnModel};
use simkit::units::{Amps, Hertz, Seconds, Watts};
use simkit::DeterministicRng;
use std::hint::black_box;
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use vreg::GatingState;
use workload::microtrace::generate_window;
use workload::{Benchmark, TraceGenerator};

fn thermal_solvers(c: &mut Criterion) {
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    let mut pm = PowerMap::new(&model);
    for block in chip.blocks() {
        pm.add_block(block.id(), Watts::new(2.0)).unwrap();
    }
    c.bench_function("thermal/steady_state_cg_32x32", |b| {
        b.iter(|| model.steady_state(black_box(&pm)).unwrap())
    });

    let mut stepper = model.stepper(Seconds::from_micros(20.0));
    let mut state = model.steady_state(&pm).unwrap();
    c.bench_function("thermal/transient_step_32x32", |b| {
        b.iter(|| stepper.step(black_box(&mut state), &pm).unwrap())
    });
}

fn pdn_solvers(c: &mut Criterion) {
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let powers = vec![Watts::new(1.5); chip.blocks().len()];
    let all_on = GatingState::all_on(chip.vr_sites().len());
    c.bench_function("pdn/ir_drop_16_domains", |b| {
        b.iter(|| model.ir_drop(black_box(&all_on), &powers).unwrap())
    });

    let mut rng = DeterministicRng::new(7);
    let window = generate_window(&mut rng, 2000, 0.6, 0.7);
    let params = TransientParams {
        mean_current: Amps::new(9.0),
        n_active: 5,
        n_total: 9,
        distance_factor: 1.3,
        response_time: Seconds::from_nanos(15.0),
        frequency: Hertz::from_ghz(4.0),
    };
    c.bench_function("pdn/transient_window_2k_cycles", |b| {
        b.iter(|| {
            peak_transient_fraction(
                &PdnConfig::reference(),
                black_box(&params),
                window.multipliers(),
                1000,
            )
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    let chip = power8_like();
    let generator = TraceGenerator::new(&chip);
    c.bench_function("workload/trace_1ms_52_blocks", |b| {
        b.iter(|| generator.generate(black_box(Benchmark::Fft), Seconds::from_millis(1.0)))
    });
}

criterion_group!(benches, thermal_solvers, pdn_solvers, workload_generation);
criterion_main!(benches);
