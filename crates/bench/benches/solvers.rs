//! Micro-benchmarks of the numerical kernels every experiment leans on:
//! the blocked-CSR SpMV kernel, the thermal steady-state solve per
//! backend (Jacobi-CG vs multigrid-CG vs direct), the backward-Euler
//! transient step per solver backend, the sparse LDLᵀ
//! factor/refactor/solve kernels, the PDN IR-drop solve per backend,
//! the transient-noise convolution, and workload trace generation.

use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use pdn::transient::{peak_transient_fraction, TransientParams};
use pdn::{PdnConfig, PdnModel};
use simkit::linalg::{LdltFactor, LdltWorkspace, SolverBackend};
use simkit::units::{Amps, Hertz, Seconds, Watts};
use simkit::DeterministicRng;
use std::hint::black_box;
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use vreg::GatingState;
use workload::microtrace::generate_window;
use workload::{Benchmark, TraceGenerator};

fn spmv_kernel(c: &mut Criterion) {
    // The 4-wide blocked SpMV on the real 64×64 conductance matrix
    // (n = 8193, ~5 nnz/row plus the dense sink row): the inner kernel
    // of every CG iteration and multigrid smoothing sweep.
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::standard());
    let a = model.conductance_matrix();
    let n = a.rows();
    let x: Vec<f64> = (0..n).map(|i| 0.5 + (i % 13) as f64 * 0.1).collect();
    let mut y = vec![0.0; n];
    c.bench_function("spmv/thermal_64x64", |b| {
        b.iter(|| a.mul_vec_into(black_box(&x), &mut y))
    });
}

fn thermal_solvers(c: &mut Criterion) {
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    let mut pm = PowerMap::new(&model);
    for block in chip.blocks() {
        pm.add_block(block.id(), Watts::new(2.0)).unwrap();
    }
    c.bench_function("thermal/steady_state_cg_32x32", |b| {
        b.iter(|| model.steady_state(black_box(&pm)).unwrap())
    });

    let mut stepper = model.stepper(Seconds::from_micros(20.0));
    let mut state = model.steady_state(&pm).unwrap();
    c.bench_function("thermal/transient_step_32x32", |b| {
        b.iter(|| stepper.step(black_box(&mut state), &pm).unwrap())
    });

    // Steady solves from a cold state under each pinned backend on the
    // production 64×64 grid, against a warm cache (factor / hierarchy
    // built before the measured region): BENCH.md's grid-scaling story
    // in microbench form.
    for backend in [SolverBackend::Cg, SolverBackend::Mgcg, SolverBackend::Direct] {
        let config = ThermalConfig {
            solver: backend,
            ..ThermalConfig::standard()
        };
        let model = ThermalModel::new(&chip, config);
        let mut pm = PowerMap::new(&model);
        for block in chip.blocks() {
            pm.add_block(block.id(), Watts::new(2.0)).unwrap();
        }
        let mut scratch = thermal::SteadyScratch::new();
        let mut state = model.ambient_state();
        model
            .steady_state_with_scratch(&pm, &mut state, &mut scratch)
            .unwrap();
        let name = format!("thermal/steady_state_64x64_{}", backend.name());
        c.bench_function(&name, |b| {
            b.iter(|| {
                state = model.ambient_state();
                model
                    .steady_state_with_scratch(black_box(&pm), &mut state, &mut scratch)
                    .unwrap()
            })
        });
    }

    // The same step under each pinned backend: BENCH.md's honest
    // direct-vs-iterative transient comparison comes from these rows.
    for backend in [
        SolverBackend::Direct,
        SolverBackend::GaussSeidel,
        SolverBackend::Cg,
        SolverBackend::Mgcg,
    ] {
        let config = ThermalConfig {
            solver: backend,
            ..ThermalConfig::coarse()
        };
        let model = ThermalModel::new(&chip, config);
        let mut pm = PowerMap::new(&model);
        for block in chip.blocks() {
            pm.add_block(block.id(), Watts::new(2.0)).unwrap();
        }
        let mut stepper = model.stepper(Seconds::from_micros(20.0));
        let mut state = model.steady_state(&pm).unwrap();
        let name = format!("thermal/transient_step_32x32_{}", backend.name());
        c.bench_function(&name, |b| {
            b.iter(|| stepper.step(black_box(&mut state), &pm).unwrap())
        });
    }
}

fn direct_factorization(c: &mut Criterion) {
    // The LDLᵀ kernels on the real 32×32 conductance matrix (n = 2049):
    // full factor (ordering + symbolic + numeric), values-only refactor,
    // and the allocation-free triangular solve.
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    let a = model.conductance_matrix();
    c.bench_function("direct/factor_thermal_32x32", |b| {
        b.iter(|| LdltFactor::new(black_box(a)).unwrap())
    });

    let mut factor = LdltFactor::new(a).unwrap();
    c.bench_function("direct/refactor_thermal_32x32", |b| {
        b.iter(|| factor.refactor(black_box(a)).unwrap())
    });

    let n = a.rows();
    let rhs: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
    let mut x = vec![0.0; n];
    let mut ws = LdltWorkspace::new();
    c.bench_function("direct/trisolve_thermal_32x32", |b| {
        b.iter(|| factor.solve_into(black_box(&rhs), &mut x, &mut ws).unwrap())
    });
}

fn pdn_solvers(c: &mut Criterion) {
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let powers = vec![Watts::new(1.5); chip.blocks().len()];
    let all_on = GatingState::all_on(chip.vr_sites().len());
    c.bench_function("pdn/ir_drop_16_domains", |b| {
        b.iter(|| model.ir_drop(black_box(&all_on), &powers).unwrap())
    });

    // Per-backend IR solve: the cached-factor direct path vs CG vs
    // multigrid-CG. With the warm-start carry the repeat solves below
    // converge almost instantly; the measured cost is residual checking
    // plus the preconditioner apply, which is the steady-state regime of
    // an engine run with stable gating.
    for backend in [SolverBackend::Direct, SolverBackend::Cg, SolverBackend::Mgcg] {
        let config = PdnConfig {
            solver: backend,
            ..PdnConfig::reference()
        };
        let model = PdnModel::new(&chip, config);
        let name = format!("pdn/ir_drop_16_domains_{}", backend.name());
        c.bench_function(&name, |b| {
            b.iter(|| model.ir_drop(black_box(&all_on), &powers).unwrap())
        });
    }

    let mut rng = DeterministicRng::new(7);
    let window = generate_window(&mut rng, 2000, 0.6, 0.7);
    let params = TransientParams {
        mean_current: Amps::new(9.0),
        n_active: 5,
        n_total: 9,
        distance_factor: 1.3,
        response_time: Seconds::from_nanos(15.0),
        frequency: Hertz::from_ghz(4.0),
    };
    c.bench_function("pdn/transient_window_2k_cycles", |b| {
        b.iter(|| {
            peak_transient_fraction(
                &PdnConfig::reference(),
                black_box(&params),
                window.multipliers(),
                1000,
            )
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    let chip = power8_like();
    let generator = TraceGenerator::new(&chip);
    c.bench_function("workload/trace_1ms_52_blocks", |b| {
        b.iter(|| generator.generate(black_box(Benchmark::Fft), Seconds::from_millis(1.0)))
    });
}

criterion_group!(
    benches,
    spmv_kernel,
    thermal_solvers,
    direct_factorization,
    pdn_solvers,
    workload_generation
);
criterion_main!(benches);
