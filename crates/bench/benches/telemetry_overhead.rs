//! Telemetry overhead: the acceptance bar is that a run with the no-op
//! sink installed stays within 1 % of a run with telemetry disabled
//! (the default), while the full JSONL + metrics pipeline is measured
//! separately to quantify the cost of actually recording, and the
//! spatial frame recorder's extra cost on top of that pipeline is
//! measured as its own row.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use simkit::telemetry::{
    CountingSink, FanoutSink, JsonlSink, MetricsRegistry, MetricsSink, NoopSink, Telemetry,
    TelemetrySink,
};
use std::hint::black_box;
use std::sync::Arc;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

/// One engine run with the given telemetry handle installed, capturing
/// a spatial frame every `frame_every` thermal steps (0 = off).
fn traced_run_with_frames(telemetry: Telemetry, frame_every: usize) {
    let chip = power8_like();
    let config = EngineConfig {
        frame_every,
        ..bench_config()
    };
    let mut engine = SimulationEngine::new(&chip, config);
    engine.set_telemetry(telemetry);
    black_box(engine.run(Benchmark::LuNcb, PolicyKind::OracVT).unwrap());
}

/// One engine run with the given telemetry handle installed.
fn traced_run(telemetry: Telemetry) {
    traced_run_with_frames(telemetry, 0);
}

fn telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);

    // Baseline: the default disabled handle (no sink at all).
    group.bench_function("disabled", |b| {
        b.iter(|| traced_run(Telemetry::disabled()))
    });

    // No-op sink: the handle caches the sink's inactive flag, so this
    // must be indistinguishable from `disabled` (within 1 %).
    group.bench_function("noop_sink", |b| {
        b.iter(|| traced_run(Telemetry::with_sink(Arc::new(NoopSink))))
    });

    // Full pipeline: JSONL file + metrics registry + event counter —
    // what `--telemetry=<dir>` installs.
    group.bench_function("jsonl_metrics", |b| {
        let dir = std::env::temp_dir().join(format!("tg-bench-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        b.iter(|| {
            let jsonl = Arc::new(JsonlSink::create(&dir.join("trace.jsonl")).unwrap());
            let registry = Arc::new(MetricsRegistry::new());
            let fanout = Arc::new(FanoutSink::new(vec![
                jsonl as Arc<dyn TelemetrySink>,
                Arc::new(MetricsSink::new(registry)),
            ]));
            let counter = Arc::new(CountingSink::new(fanout as Arc<dyn TelemetrySink>));
            traced_run(Telemetry::with_sink(counter));
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Frames on top of the full pipeline: the spatial frame recorder
    // sampling every 50 steps. The delta against `jsonl_metrics` is the
    // recorder's cost; the gated BENCH axis tracks the same quantity
    // from the recorder's own `telemetry.overhead` counter.
    group.bench_function("jsonl_metrics_frames", |b| {
        let dir =
            std::env::temp_dir().join(format!("tg-bench-telemetry-fr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        b.iter(|| {
            let jsonl = Arc::new(JsonlSink::create(&dir.join("trace.jsonl")).unwrap());
            let registry = Arc::new(MetricsRegistry::new());
            let fanout = Arc::new(FanoutSink::new(vec![
                jsonl as Arc<dyn TelemetrySink>,
                Arc::new(MetricsSink::new(registry)),
            ]));
            let counter = Arc::new(CountingSink::new(fanout as Arc<dyn TelemetrySink>));
            traced_run_with_frames(Telemetry::with_sink(counter), 50);
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
