//! Benches of the voltage-noise artefacts at reduced scale: Fig. 11
//! (noise sweep), Fig. 14 (worst-window traces), Fig. 15 (LDO vs. FIVR),
//! and Table 2 (emergency residency).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use std::hint::black_box;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use vreg::RegulatorDesign;
use workload::Benchmark;

fn fig11(c: &mut Criterion) {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, bench_config());
    let mut group = c.benchmark_group("fig11/fft_noise_cells");
    group.sample_size(10);
    for policy in [PolicyKind::OracT, PolicyKind::PracVT, PolicyKind::AllOn] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| black_box(engine.run(Benchmark::Fft, policy).unwrap()))
        });
    }
    group.finish();
}

fn fig14(c: &mut Criterion) {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, bench_config());
    let mut group = c.benchmark_group("fig14/fft_worst_window_trace");
    group.sample_size(10);
    group.bench_function("oract", |b| {
        b.iter(|| {
            let r = engine.run(Benchmark::Fft, PolicyKind::OracT).unwrap();
            black_box(r.worst_window_trace().map(<[f64]>::to_vec))
        })
    });
    group.finish();
}

fn fig15(c: &mut Criterion) {
    let chip = power8_like();
    let ldo = SimulationEngine::new(
        &chip,
        EngineConfig {
            design: RegulatorDesign::power8_ldo(),
            ..bench_config()
        },
    );
    let mut group = c.benchmark_group("fig15/ldo_allon");
    group.sample_size(10);
    group.bench_function("barnes", |b| {
        b.iter(|| black_box(ldo.run(Benchmark::Barnes, PolicyKind::AllOn).unwrap()))
    });
    group.finish();
}

fn table2(c: &mut Criterion) {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, bench_config());
    let mut group = c.benchmark_group("table2/emergency_residency");
    group.sample_size(10);
    group.bench_function("fft_oract", |b| {
        b.iter(|| {
            let r = engine.run(Benchmark::Fft, PolicyKind::OracT).unwrap();
            black_box(r.emergency_cycle_fraction())
        })
    });
    group.finish();
}

criterion_group!(benches, fig11, fig14, fig15, table2);
criterion_main!(benches);
