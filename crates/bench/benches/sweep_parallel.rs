//! Wall-clock comparison of the sweep executor at one worker thread
//! versus the machine's full width, over a 4-cell benchmark × policy
//! grid at the tiny configuration. Cache files are wiped before every
//! iteration so each measurement simulates all four cells.
//!
//! Run from `crates/bench` on a machine with registry access:
//! `cargo bench --bench sweep_parallel`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use experiments::context::ExpOptions;
use experiments::sweep::{cache_path, grid};
use std::fs;
use std::hint::black_box;
use thermogater::PolicyKind;
use workload::Benchmark;

const BENCHMARKS: [Benchmark; 2] = [Benchmark::Fft, Benchmark::Volrend];
const POLICIES: [PolicyKind; 2] = [PolicyKind::AllOn, PolicyKind::Naive];

fn wipe_cells(opts: &ExpOptions) {
    for b in BENCHMARKS {
        for p in POLICIES {
            let _ = fs::remove_file(cache_path(opts, b, p));
        }
    }
}

fn sweep_parallel(c: &mut Criterion) {
    let width = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("sweep_parallel");
    group.sample_size(10);

    for threads in [1, width] {
        let opts = ExpOptions::tiny().with_threads(threads);
        group.bench_function(format!("grid_4_cells_{threads}_threads"), |b| {
            b.iter_batched(
                || wipe_cells(&opts),
                |()| black_box(grid(&opts, &BENCHMARKS, &POLICIES)),
                BatchSize::PerIteration,
            )
        });
        if threads == width {
            break; // width == 1: both configurations are the same run.
        }
    }
    group.finish();
    wipe_cells(&ExpOptions::tiny());
}

criterion_group!(benches, sweep_parallel);
criterion_main!(benches);
