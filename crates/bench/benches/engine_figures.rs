//! Benches of the engine-driven thermal/power artefacts at reduced
//! scale: Fig. 6 (active-count tracking), Fig. 7 (loss savings), Fig. 8
//! (Naïve oscillation), Figs. 9/10 (thermal sweeps), Fig. 12 (heat
//! maps), and Fig. 13 (regulator activity).

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use floorplan::reference::power8_like;
use std::hint::black_box;
use thermogater::{PolicyKind, SimulationEngine};
use workload::Benchmark;

fn run_cell(c: &mut Criterion, id: &str, benchmark: Benchmark, policy: PolicyKind) {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, bench_config());
    let mut group = c.benchmark_group(id);
    group.sample_size(10);
    group.bench_function("run", |b| {
        b.iter(|| black_box(engine.run(benchmark, policy).unwrap()))
    });
    group.finish();
}

fn fig06(c: &mut Criterion) {
    // Active-count tracking: lu_ncb under thermally-aware gating.
    run_cell(c, "fig06/lu_ncb_oract", Benchmark::LuNcb, PolicyKind::OracT);
}

fn fig07(c: &mut Criterion) {
    // Loss savings need the all-on baseline as well.
    run_cell(
        c,
        "fig07/raytrace_allon",
        Benchmark::Raytrace,
        PolicyKind::AllOn,
    );
    run_cell(
        c,
        "fig07/raytrace_gated",
        Benchmark::Raytrace,
        PolicyKind::OracT,
    );
}

fn fig08(c: &mut Criterion) {
    run_cell(c, "fig08/lu_ncb_naive", Benchmark::LuNcb, PolicyKind::Naive);
}

fn fig09_fig10(c: &mut Criterion) {
    // One representative cell per policy class of the thermal sweeps.
    run_cell(
        c,
        "fig09_10/chol_offchip",
        Benchmark::Cholesky,
        PolicyKind::OffChip,
    );
    run_cell(
        c,
        "fig09_10/chol_oracvt",
        Benchmark::Cholesky,
        PolicyKind::OracVT,
    );
}

fn fig12(c: &mut Criterion) {
    run_cell(
        c,
        "fig12/chol_oracv_heatmap",
        Benchmark::Cholesky,
        PolicyKind::OracV,
    );
}

fn fig13(c: &mut Criterion) {
    run_cell(
        c,
        "fig13/lu_ncb_oracv_activity",
        Benchmark::LuNcb,
        PolicyKind::OracV,
    );
}

criterion_group!(benches, fig06, fig07, fig08, fig09_fig10, fig12, fig13);
criterion_main!(benches);
