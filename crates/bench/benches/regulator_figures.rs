//! Benches of the regulator-characteristic artefacts: Fig. 1 (ISSCC
//! survey), Fig. 2 (16-phase family), and Fig. 5 (calibration family).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::regulator::{fig01_curves, fig02_family, fig05_family};
use std::hint::black_box;

fn fig01(c: &mut Criterion) {
    c.bench_function("fig01/survey_curves", |b| {
        b.iter(|| black_box(fig01_curves()))
    });
}

fn fig02(c: &mut Criterion) {
    c.bench_function("fig02/16_phase_family", |b| {
        b.iter(|| black_box(fig02_family()))
    });
}

fn fig05(c: &mut Criterion) {
    c.bench_function("fig05/calibration_family", |b| {
        b.iter(|| black_box(fig05_family()))
    });
}

criterion_group!(benches, fig01, fig02, fig05);
criterion_main!(benches);
