//! Shared helpers for the Criterion benchmark suite.
//!
//! The benches measure the regeneration kernels behind every paper
//! artefact at reduced scale (cargo-bench runtimes must stay sane on one
//! core); the full-scale regeneration lives in the `experiments`
//! binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::EngineConfig;

/// A minimal engine configuration for benchmarking: 2 ms ROI, 32×32
/// thermal grid, 4 noise windows.
pub fn bench_config() -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(2.0),
        thermal: ThermalConfig::coarse(),
        noise_window_count: 4,
        profiling_decisions: 3,
        ..EngineConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let cfg = bench_config();
        assert!(cfg.duration.as_millis() <= 2.0);
        assert_eq!(cfg.thermal.nx, 32);
    }
}
