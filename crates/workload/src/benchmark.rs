//! The SPLASH-2x benchmark suite.

use std::fmt;

/// The 14 SPLASH-2x benchmarks the paper evaluates (8-thread runs,
/// region of interest). Labels match the x-axis abbreviations used in the
/// paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Benchmark {
    /// Barnes–Hut N-body simulation.
    Barnes,
    /// Blocked sparse Cholesky factorisation.
    Cholesky,
    /// Radix-√n six-step FFT.
    Fft,
    /// Fast multipole method N-body.
    Fmm,
    /// Blocked dense LU, contiguous blocks.
    LuCb,
    /// Blocked dense LU, non-contiguous blocks.
    LuNcb,
    /// Ocean simulation, contiguous partitions.
    OceanCp,
    /// Ocean simulation, non-contiguous partitions.
    OceanNcp,
    /// Hierarchical radiosity.
    Radiosity,
    /// Integer radix sort.
    Radix,
    /// Ray tracer.
    Raytrace,
    /// Volume renderer.
    Volrend,
    /// Water simulation, O(n²) algorithm.
    WaterNsquared,
    /// Water simulation, spatial algorithm.
    WaterSpatial,
}

impl Benchmark {
    /// All benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Fft,
        Benchmark::Fmm,
        Benchmark::LuCb,
        Benchmark::LuNcb,
        Benchmark::OceanCp,
        Benchmark::OceanNcp,
        Benchmark::Radiosity,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::Volrend,
        Benchmark::WaterNsquared,
        Benchmark::WaterSpatial,
    ];

    /// The abbreviated label used on the paper's figure axes.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Cholesky => "chol",
            Benchmark::Fft => "fft",
            Benchmark::Fmm => "fmm",
            Benchmark::LuCb => "lu_cb",
            Benchmark::LuNcb => "lu_ncb",
            Benchmark::OceanCp => "oc_cp",
            Benchmark::OceanNcp => "oc_ncp",
            Benchmark::Radiosity => "radio",
            Benchmark::Radix => "radix",
            Benchmark::Raytrace => "rayt",
            Benchmark::Volrend => "volr",
            Benchmark::WaterNsquared => "water_n",
            Benchmark::WaterSpatial => "water_s",
        }
    }

    /// A stable per-benchmark RNG seed so traces are reproducible.
    pub fn seed(self) -> u64 {
        // Order in ALL, offset into a fixed namespace.
        0x7468_6572_6D6F_0000
            | Benchmark::ALL
                .iter()
                .position(|&b| b == self)
                .expect("ALL is exhaustive") as u64
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_fourteen_unique() {
        let mut labels: Vec<_> = Benchmark::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 14);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 14);
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(Benchmark::Cholesky.label(), "chol");
        assert_eq!(Benchmark::LuNcb.to_string(), "lu_ncb");
        assert_eq!(Benchmark::Raytrace.label(), "rayt");
        assert_eq!(Benchmark::WaterSpatial.label(), "water_s");
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<_> = Benchmark::ALL.iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 14);
    }
}
