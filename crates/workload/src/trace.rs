//! Activity-trace generation.

use crate::benchmark::Benchmark;
use crate::mix::WorkloadSpec;
use crate::profile::BenchmarkProfile;
use floorplan::{BlockId, DomainKind, Floorplan, UnitKind};
use simkit::series::TraceMatrix;
use simkit::telemetry::{EventKind, Telemetry};
use simkit::units::Seconds;
use simkit::DeterministicRng;

/// Default trace resolution: 1 µs, matching the power-trace granularity
/// the paper's SNIPER+McPAT flow produces.
pub const DEFAULT_DT: Seconds = Seconds::new(1e-6);

/// A generated per-block activity trace over one benchmark ROI.
///
/// Activities are utilisations in `[0, 1]`, one channel per
/// [`BlockId`] of the floorplan the trace was generated for.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityTrace {
    spec: WorkloadSpec,
    activity: TraceMatrix,
}

impl ActivityTrace {
    /// Assembles a trace from parts (used by the CSV replay reader).
    pub(crate) fn from_parts(spec: WorkloadSpec, activity: TraceMatrix) -> Self {
        ActivityTrace { spec, activity }
    }

    /// The workload this trace models (single benchmark or mix).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The benchmark this trace models, when it is a single-program run.
    ///
    /// # Panics
    ///
    /// Panics for a multiprogrammed trace; use [`ActivityTrace::spec`]
    /// there.
    pub fn benchmark(&self) -> Benchmark {
        self.spec
            .as_single()
            .expect("benchmark() on a multiprogrammed trace; use spec()")
    }

    /// The per-block activity channels.
    pub fn activity(&self) -> &TraceMatrix {
        &self.activity
    }

    /// Sample interval.
    pub fn dt(&self) -> Seconds {
        self.activity.dt()
    }

    /// Number of samples per channel.
    pub fn sample_count(&self) -> usize {
        self.activity.sample_count()
    }

    /// Activity history of one block.
    ///
    /// # Panics
    ///
    /// Panics when the block id is out of range for the generating chip.
    pub fn block_activity(&self, block: BlockId) -> &[f64] {
        self.activity.channel(block.0)
    }

    /// Activity of one block at one sample.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn sample(&self, block: BlockId, index: usize) -> f64 {
        self.activity.channel(block.0)[index]
    }

    /// Mean utilisation across every channel and sample — a cheap
    /// one-number summary for telemetry and sanity checks.
    pub fn mean_activity(&self) -> f64 {
        let channels = self.activity.channel_count();
        let samples = self.activity.sample_count();
        if channels == 0 || samples == 0 {
            return 0.0;
        }
        let total: f64 = (0..channels)
            .map(|c| self.activity.channel(c).iter().sum::<f64>())
            .sum();
        total / (channels * samples) as f64
    }

    /// Emits a `workload.trace` progress event describing this trace
    /// (label, channels, samples, mean activity). No-op when `telemetry`
    /// is disabled.
    pub fn emit_telemetry(&self, telemetry: &Telemetry) {
        if telemetry.is_enabled() {
            telemetry
                .event(EventKind::Progress, "workload.trace")
                .field_str("workload", self.spec.to_string())
                .field_u64("channels", self.activity.channel_count() as u64)
                .field_u64("samples", self.activity.sample_count() as u64)
                .field_f64("mean_activity", self.mean_activity())
                .emit();
        }
    }
}

/// Generates synthetic activity traces for a chip.
///
/// # Examples
///
/// ```
/// use workload::{Benchmark, TraceGenerator};
/// use floorplan::reference::power8_like;
/// use simkit::units::Seconds;
///
/// let chip = power8_like();
/// let trace = TraceGenerator::new(&chip)
///     .generate(Benchmark::Fft, Seconds::from_millis(1.0));
/// assert_eq!(trace.sample_count(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator<'a> {
    chip: &'a Floorplan,
    dt: Seconds,
    seed_offset: u64,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator for the given chip with the default 1 µs
    /// resolution.
    pub fn new(chip: &'a Floorplan) -> Self {
        TraceGenerator {
            chip,
            dt: DEFAULT_DT,
            seed_offset: 0,
        }
    }

    /// Overrides the sample interval.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is not positive.
    pub fn with_dt(mut self, dt: Seconds) -> Self {
        assert!(dt.get() > 0.0, "dt must be positive");
        self.dt = dt;
        self
    }

    /// Perturbs the per-benchmark seed, e.g. to generate independent
    /// replicas of the same benchmark.
    pub fn with_seed_offset(mut self, offset: u64) -> Self {
        self.seed_offset = offset;
        self
    }

    /// Generates the activity trace of a single benchmark for
    /// `duration`.
    ///
    /// Deterministic: the same generator configuration always produces
    /// the same trace.
    ///
    /// # Panics
    ///
    /// Panics when `duration` is shorter than one sample.
    pub fn generate(&self, benchmark: Benchmark, duration: Seconds) -> ActivityTrace {
        self.generate_spec(&WorkloadSpec::Single(benchmark), duration)
    }

    /// Generates the activity trace of an arbitrary workload spec —
    /// single-program or multiprogrammed — for `duration`.
    ///
    /// In a mix, each core runs its own benchmark's stochastic process;
    /// shared uncore blocks see the utilisation-and-memory-intensity mix
    /// the cores collectively produce.
    ///
    /// # Panics
    ///
    /// Panics when `duration` is shorter than one sample.
    pub fn generate_spec(&self, spec: &WorkloadSpec, duration: Seconds) -> ActivityTrace {
        let samples = (duration.get() / self.dt.get()).round() as usize;
        assert!(samples > 0, "duration shorter than one sample");
        let mut rng = DeterministicRng::new(spec.seed() ^ self.seed_offset);

        let cores = self.core_indices();
        let distinct_cores = self
            .chip
            .domains()
            .iter()
            .filter(|d| d.kind() == DomainKind::Core)
            .count()
            .max(1);

        // Per-core profile and state: imbalance factor, phase offset,
        // AR(1) noise, burst countdown, burst RNG.
        let core_profiles: Vec<BenchmarkProfile> = (0..distinct_cores)
            .map(|i| spec.profile_for_core(i))
            .collect();
        let mut core_state: Vec<CoreState> = core_profiles
            .iter()
            .enumerate()
            .map(|(i, profile)| CoreState::new(&mut rng, profile, i))
            .collect();
        // Per-block jitter streams.
        let mut block_rng: Vec<DeterministicRng> = (0..self.chip.blocks().len())
            .map(|i| rng.fork(i as u64))
            .collect();
        // Uncore shares one slower AR(1) wander, parameterised by the
        // average noise character of the mix.
        let uncore_ar =
            core_profiles.iter().map(|p| p.noise_ar).sum::<f64>() / core_profiles.len() as f64;
        let uncore_sigma =
            core_profiles.iter().map(|p| p.noise_sigma).sum::<f64>() / core_profiles.len() as f64;
        let mut uncore_noise = 0.0f64;
        let mut uncore_rng = rng.fork(0xDEAD);

        let mut matrix = TraceMatrix::new(self.chip.blocks().len(), self.dt);
        let mut column = vec![0.0f64; self.chip.blocks().len()];
        let dt_us = self.dt.as_micros();

        for s in 0..samples {
            let t_us = s as f64 * dt_us;
            // Advance per-core processes.
            for (state, profile) in core_state.iter_mut().zip(&core_profiles) {
                state.step(profile, t_us, dt_us);
            }
            // Memory traffic the cores collectively generate.
            let mean_memory_drive = core_state
                .iter()
                .zip(&core_profiles)
                .map(|(c, p)| c.util * p.memory_intensity)
                .sum::<f64>()
                / core_state.len() as f64;
            // Uncore wander.
            uncore_noise = uncore_ar * uncore_noise
                + uncore_sigma * 0.5 * (1.0 - uncore_ar * uncore_ar).sqrt() * uncore_rng.normal();

            for (block_idx, block) in self.chip.blocks().iter().enumerate() {
                let jitter = 0.02 * block_rng[block_idx].normal();
                let util = match cores[block_idx] {
                    Some(core) => {
                        let core_util = core_state[core].util;
                        let mem = core_profiles[core].memory_intensity;
                        core_util * kind_weight(block.kind(), mem) + jitter
                    }
                    None => {
                        let w = uncore_weight(block.kind());
                        mean_memory_drive * w + uncore_noise + jitter
                    }
                };
                column[block_idx] = util.clamp(0.02, 1.0);
            }
            matrix
                .push_column(&column)
                .expect("column length fixed to block count");
        }

        ActivityTrace {
            spec: spec.clone(),
            activity: matrix,
        }
    }

    /// For each block: the index (0-based, over core domains only) of the
    /// core domain it belongs to, or `None` for uncore blocks.
    fn core_indices(&self) -> Vec<Option<usize>> {
        let mut core_of_domain = vec![None; self.chip.domains().len()];
        let mut next = 0usize;
        for (i, d) in self.chip.domains().iter().enumerate() {
            if d.kind() == DomainKind::Core {
                core_of_domain[i] = Some(next);
                next += 1;
            }
        }
        let mut out = vec![None; self.chip.blocks().len()];
        for domain in self.chip.domains() {
            for &bid in domain.blocks() {
                out[bid.0] = core_of_domain[domain.id().0];
            }
        }
        out
    }
}

/// Relative activity of a unit inside an active core.
fn kind_weight(kind: UnitKind, memory_intensity: f64) -> f64 {
    match kind {
        UnitKind::Execution => 1.0 + 0.15 * (1.0 - memory_intensity),
        UnitKind::LoadStore => 0.85 + 0.25 * memory_intensity,
        UnitKind::InstructionSchedule => 0.78,
        UnitKind::InstructionFetch => 0.72,
        UnitKind::L2Cache => 0.40 + 0.35 * memory_intensity,
        // Uncore kinds normally route through `uncore_weight`, but a
        // custom floorplan may place them inside a core domain.
        UnitKind::L3Cache => 0.35 + 0.40 * memory_intensity,
        UnitKind::Noc => 0.50,
        UnitKind::MemoryController => 0.45,
        // `UnitKind` is non-exhaustive; treat future kinds as average logic.
        _ => 0.70,
    }
}

/// Relative activity of an uncore block, applied on top of
/// `mean_core_util × memory_intensity`.
fn uncore_weight(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::L3Cache => 0.80,
        UnitKind::Noc => 0.95,
        UnitKind::MemoryController => 0.85,
        // A logic unit in an uncore domain behaves like moderate logic.
        _ => 0.70,
    }
}

#[derive(Debug)]
struct CoreState {
    imbalance: f64,
    phase_offset: f64,
    noise: f64,
    burst_remaining_us: f64,
    util: f64,
    rng: DeterministicRng,
}

impl CoreState {
    fn new(rng: &mut DeterministicRng, profile: &BenchmarkProfile, index: usize) -> Self {
        let mut core_rng = rng.fork(0x636F_7265 ^ index as u64);
        let imbalance = 1.0 + profile.thread_imbalance * (2.0 * core_rng.uniform_f64() - 1.0);
        // Barrier-synchronised codes keep every thread on (nearly) the
        // same phase; task-parallel ones drift apart.
        let phase_offset = (1.0 - profile.phase_sync) * core_rng.uniform_f64();
        CoreState {
            imbalance,
            phase_offset,
            noise: 0.0,
            burst_remaining_us: 0.0,
            util: profile.mean_util,
            rng: core_rng,
        }
    }

    fn step(&mut self, profile: &BenchmarkProfile, t_us: f64, dt_us: f64) {
        // Plateau-shaped program phases: tanh-squashed sinusoid.
        let raw =
            (2.0 * std::f64::consts::PI * (t_us / profile.phase_period_us + self.phase_offset))
                .sin();
        let phase = (3.0 * raw).tanh() / 3.0f64.tanh();
        // AR(1) noise with stationary variance `noise_sigma²`.
        self.noise = profile.noise_ar * self.noise
            + profile.noise_sigma
                * (1.0 - profile.noise_ar * profile.noise_ar).sqrt()
                * self.rng.normal();
        // Poisson burst arrivals.
        if self.burst_remaining_us > 0.0 {
            self.burst_remaining_us -= dt_us;
        } else {
            let p_arrival = profile.burst_rate_per_ms * dt_us / 1000.0;
            if self.rng.bernoulli(p_arrival) {
                self.burst_remaining_us = profile.burst_len_us;
            }
        }
        let burst = if self.burst_remaining_us > 0.0 {
            profile.burst_gain
        } else {
            0.0
        };
        self.util =
            (profile.mean_util * self.imbalance + profile.phase_depth * phase + self.noise + burst)
                .clamp(0.02, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;

    fn short_trace(benchmark: Benchmark) -> (floorplan::Floorplan, ActivityTrace) {
        let chip = power8_like();
        let trace = TraceGenerator::new(&chip).generate(benchmark, Seconds::from_millis(2.0));
        (chip, trace)
    }

    #[test]
    fn trace_shape_matches_chip_and_duration() {
        let (chip, trace) = short_trace(Benchmark::Barnes);
        assert_eq!(trace.activity().channel_count(), chip.blocks().len());
        assert_eq!(trace.sample_count(), 2000);
        assert_eq!(trace.benchmark(), Benchmark::Barnes);
    }

    #[test]
    fn trace_summary_telemetry() {
        use simkit::telemetry::{EventKind, FieldValue, Telemetry};

        let (_, trace) = short_trace(Benchmark::Fft);
        let mean = trace.mean_activity();
        assert!(mean > 0.0 && mean < 1.0, "mean activity {mean}");
        let (tel, sink) = Telemetry::recorder();
        trace.emit_telemetry(&tel);
        trace.emit_telemetry(&Telemetry::disabled());
        assert_eq!(sink.count_kind(EventKind::Progress), 1);
        let event = &sink.events()[0];
        assert_eq!(event.name, "workload.trace");
        assert!(event
            .fields
            .iter()
            .any(|(k, v)| k == "samples" && *v == FieldValue::U64(2000)));
    }

    #[test]
    fn activities_stay_in_unit_interval() {
        let (_, trace) = short_trace(Benchmark::Fft);
        for ch in 0..trace.activity().channel_count() {
            for &v in trace.activity().channel(ch) {
                assert!((0.0..=1.0).contains(&v), "activity {v}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let chip = power8_like();
        let a = TraceGenerator::new(&chip).generate(Benchmark::Radix, Seconds::from_millis(1.0));
        let b = TraceGenerator::new(&chip).generate(Benchmark::Radix, Seconds::from_millis(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn seed_offset_changes_the_trace() {
        let chip = power8_like();
        let a = TraceGenerator::new(&chip).generate(Benchmark::Radix, Seconds::from_millis(1.0));
        let b = TraceGenerator::new(&chip)
            .with_seed_offset(1)
            .generate(Benchmark::Radix, Seconds::from_millis(1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn cholesky_runs_hotter_than_raytrace() {
        let (_, chol) = short_trace(Benchmark::Cholesky);
        let (_, rayt) = short_trace(Benchmark::Raytrace);
        let mean = |t: &ActivityTrace| {
            let total = t.activity().total();
            total.mean().unwrap() / t.activity().channel_count() as f64
        };
        assert!(mean(&chol) > 2.0 * mean(&rayt));
    }

    #[test]
    fn exu_is_more_active_than_l2_within_a_core() {
        let (chip, trace) = short_trace(Benchmark::Barnes);
        let exu = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.EXU")
            .unwrap();
        let l2 = chip
            .blocks()
            .iter()
            .find(|b| b.name() == "core0.L2")
            .unwrap();
        let mean = |bid: BlockId| {
            let v = trace.block_activity(bid);
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(exu.id()) > mean(l2.id()));
    }

    #[test]
    fn lu_ncb_shows_phase_structure() {
        // The per-chip total should swing appreciably over a phase period.
        let (_, trace) = short_trace(Benchmark::LuNcb);
        let total = trace.activity().total();
        let smoothed = total.downsample(100).unwrap(); // 100 µs bins
        let max = smoothed.max().unwrap();
        let min = smoothed.min().unwrap();
        assert!(
            (max - min) / max > 0.25,
            "phase swing too small: {min}..{max}"
        );
    }

    #[test]
    fn custom_dt_respected() {
        let chip = power8_like();
        let trace = TraceGenerator::new(&chip)
            .with_dt(Seconds::from_micros(10.0))
            .generate(Benchmark::Volrend, Seconds::from_millis(1.0));
        assert_eq!(trace.sample_count(), 100);
        assert!((trace.dt().as_micros() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn different_benchmarks_differ() {
        let chip = power8_like();
        let a = TraceGenerator::new(&chip).generate(Benchmark::Fft, Seconds::from_millis(1.0));
        let b = TraceGenerator::new(&chip).generate(Benchmark::Fmm, Seconds::from_millis(1.0));
        assert_ne!(a.activity(), b.activity());
    }
}
