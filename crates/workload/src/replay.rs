//! Importing and exporting activity traces.
//!
//! The synthetic suite stands in for the paper's SNIPER+McPAT pipeline,
//! but a downstream user with *real* per-unit activity traces (from their
//! own performance model, RTL activity counters, or measurement) should
//! be able to drive ThermoGater with them. This module reads and writes
//! the simple CSV interchange format:
//!
//! ```text
//! # dt_us=1.0
//! block_0,block_1,...,block_N-1
//! 0.52,0.48,...,0.10
//! 0.55,0.47,...,0.11
//! ```
//!
//! One row per sample instant, one column per [`BlockId`] in floorplan
//! order, activities in `[0, 1]`.

use crate::mix::WorkloadSpec;
use crate::trace::ActivityTrace;
use crate::Benchmark;
use simkit::series::TraceMatrix;
use simkit::units::Seconds;
use simkit::{Error, Result};
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a trace in the CSV interchange format.
///
/// Accepts any [`Write`]r by value; pass `&mut writer` to keep using the
/// writer afterwards.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when the underlying writer fails.
pub fn write_csv<W: Write>(trace: &ActivityTrace, mut writer: W) -> Result<()> {
    let io_err = |e: std::io::Error| Error::invalid_argument(format!("write failed: {e}"));
    writeln!(writer, "# dt_us={}", trace.dt().as_micros()).map_err(io_err)?;
    let n_blocks = trace.activity().channel_count();
    let header: Vec<String> = (0..n_blocks).map(|b| format!("block_{b}")).collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for s in 0..trace.sample_count() {
        let row: Vec<String> = (0..n_blocks)
            .map(|b| format!("{:.6}", trace.activity().channel(b)[s]))
            .collect();
        writeln!(writer, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a trace from the CSV interchange format.
///
/// Accepts any [`Read`]er by value; pass `&mut reader` to keep using the
/// reader afterwards. The trace is tagged with the given benchmark label
/// (external traces usually replace one of the suite's slots; use any
/// member of [`Benchmark::ALL`]).
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when the header is missing, the
/// sample interval is not positive, a row has the wrong number of
/// columns, or an activity is not a finite number in `[0, 1]`.
pub fn read_csv<R: Read>(reader: R, benchmark: Benchmark) -> Result<ActivityTrace> {
    let mut lines = BufReader::new(reader).lines();
    let io_err = |e: std::io::Error| Error::invalid_argument(format!("read failed: {e}"));

    // Metadata line: "# dt_us=<f64>".
    let meta = lines
        .next()
        .ok_or_else(|| Error::invalid_argument("empty trace file"))?
        .map_err(io_err)?;
    let dt_us: f64 = meta
        .strip_prefix("# dt_us=")
        .ok_or_else(|| Error::invalid_argument("missing '# dt_us=' metadata line"))?
        .trim()
        .parse()
        .map_err(|e| Error::invalid_argument(format!("bad dt_us: {e}")))?;
    if dt_us <= 0.0 || !dt_us.is_finite() {
        return Err(Error::invalid_argument("dt_us must be positive"));
    }

    // Header line defines the column count.
    let header = lines
        .next()
        .ok_or_else(|| Error::invalid_argument("missing header line"))?
        .map_err(io_err)?;
    let n_blocks = header.split(',').count();
    if n_blocks == 0 {
        return Err(Error::invalid_argument("header has no columns"));
    }

    let mut matrix = TraceMatrix::new(n_blocks, Seconds::from_micros(dt_us));
    let mut row = vec![0.0f64; n_blocks];
    for (line_no, line) in lines.enumerate() {
        let line = line.map_err(io_err)?;
        if line.trim().is_empty() {
            continue;
        }
        let mut count = 0;
        for (i, cell) in line.split(',').enumerate() {
            if i >= n_blocks {
                return Err(Error::invalid_argument(format!(
                    "row {} has more than {n_blocks} columns",
                    line_no + 3
                )));
            }
            let v: f64 = cell.trim().parse().map_err(|e| {
                Error::invalid_argument(format!("row {}: bad value: {e}", line_no + 3))
            })?;
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(Error::invalid_argument(format!(
                    "row {}: activity {v} outside [0, 1]",
                    line_no + 3
                )));
            }
            row[i] = v;
            count += 1;
        }
        if count != n_blocks {
            return Err(Error::invalid_argument(format!(
                "row {} has {count} columns, expected {n_blocks}",
                line_no + 3
            )));
        }
        matrix.push_column(&row)?;
    }
    if matrix.sample_count() == 0 {
        return Err(Error::invalid_argument("trace has no samples"));
    }
    Ok(ActivityTrace::from_parts(
        WorkloadSpec::Single(benchmark),
        matrix,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceGenerator;
    use floorplan::reference::power8_like;

    #[test]
    fn roundtrip_preserves_shape_and_values() {
        let chip = power8_like();
        let original =
            TraceGenerator::new(&chip).generate(Benchmark::Volrend, Seconds::from_micros(200.0));
        let mut buffer = Vec::new();
        write_csv(&original, &mut buffer).unwrap();
        let restored = read_csv(buffer.as_slice(), Benchmark::Volrend).unwrap();
        assert_eq!(
            restored.activity().channel_count(),
            original.activity().channel_count()
        );
        assert_eq!(restored.sample_count(), original.sample_count());
        assert!((restored.dt().as_micros() - original.dt().as_micros()).abs() < 1e-9);
        // Values survive to the written precision.
        for b in 0..original.activity().channel_count() {
            for s in 0..original.sample_count() {
                let a = original.activity().channel(b)[s];
                let r = restored.activity().channel(b)[s];
                assert!((a - r).abs() < 1e-6, "block {b} sample {s}");
            }
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        let no_meta = "block_0\n0.5\n";
        assert!(read_csv(no_meta.as_bytes(), Benchmark::Fft).is_err());

        let bad_dt = "# dt_us=-1\nblock_0\n0.5\n";
        assert!(read_csv(bad_dt.as_bytes(), Benchmark::Fft).is_err());

        let no_samples = "# dt_us=1\nblock_0\n";
        assert!(read_csv(no_samples.as_bytes(), Benchmark::Fft).is_err());

        let out_of_range = "# dt_us=1\nblock_0\n1.5\n";
        assert!(read_csv(out_of_range.as_bytes(), Benchmark::Fft).is_err());

        let ragged = "# dt_us=1\nblock_0,block_1\n0.5\n";
        assert!(read_csv(ragged.as_bytes(), Benchmark::Fft).is_err());

        let too_wide = "# dt_us=1\nblock_0\n0.5,0.6\n";
        assert!(read_csv(too_wide.as_bytes(), Benchmark::Fft).is_err());

        let not_a_number = "# dt_us=1\nblock_0\nabc\n";
        assert!(read_csv(not_a_number.as_bytes(), Benchmark::Fft).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "# dt_us=2.5\nblock_0,block_1\n0.1,0.2\n\n0.3,0.4\n";
        let trace = read_csv(text.as_bytes(), Benchmark::Radix).unwrap();
        assert_eq!(trace.sample_count(), 2);
        assert_eq!(trace.activity().channel(1), &[0.2, 0.4]);
        assert!((trace.dt().as_micros() - 2.5).abs() < 1e-12);
        assert_eq!(trace.benchmark(), Benchmark::Radix);
    }
}
