//! Cycle-resolution current micro-traces for voltage-noise analysis.
//!
//! VoltSpot-style noise simulation needs cycle-accurate load currents, but
//! generating those for a whole ROI is prohibitively expensive — the paper
//! samples 200 windows of 2 K cycles instead (1 K warm-up + 1 K analysis).
//! This module synthesises those windows: given a block's µs-scale
//! activity level, it produces per-cycle current multipliers exhibiting
//! the high-frequency di/dt events (pipeline flushes, cache-miss stalls
//! and returns) that create voltage noise.

use simkit::DeterministicRng;

/// Number of sample windows per benchmark (paper Section 5).
pub const WINDOW_COUNT: usize = 200;
/// Cycles per sample window (paper Section 5).
pub const WINDOW_CYCLES: usize = 2000;
/// Warm-up cycles discarded at the start of each window.
pub const WARMUP_CYCLES: usize = 1000;

/// A cycle-resolution window of per-cycle current multipliers for one
/// load (mean 1.0; multiply by the µs-scale average current to get the
/// instantaneous current).
#[derive(Debug, Clone, PartialEq)]
pub struct CycleWindow {
    multipliers: Vec<f64>,
}

impl CycleWindow {
    /// The per-cycle multipliers (length = window size).
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Number of cycles in the window.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// The analysis region (after warm-up).
    ///
    /// # Panics
    ///
    /// Panics when the window is shorter than [`WARMUP_CYCLES`].
    pub fn analysis(&self) -> &[f64] {
        &self.multipliers[WARMUP_CYCLES..]
    }
}

/// Generates one cycle window for a load running at the given activity.
///
/// `didt_severity` in `[0, 1]` scales the magnitude and frequency of
/// large current steps (see
/// [`BenchmarkProfile::didt_severity`](crate::BenchmarkProfile)). Higher
/// activity produces somewhat smaller *relative* swings (a busy pipeline
/// has fewer idle-to-busy transitions), matching the observation that
/// voltage noise is dominated by activity *changes*.
///
/// The multiplier process mirrors how real programs misbehave: a quiet
/// base of per-cycle shot noise plus a gentle two-state run/stall
/// modulation, punctuated by **rare large di/dt events** (pipeline
/// flushes, barrier exits, cache-miss bursts) — a step of tens of percent
/// of the mean current holding for a geometric dwell. Rarity matters:
/// the paper's Table 2 shows that even the worst gating policy spends
/// well under 1 % of cycles in voltage emergencies, so the maximum noise
/// must come from infrequent spikes, not a continuously noisy floor.
pub fn generate_window(
    rng: &mut DeterministicRng,
    cycles: usize,
    activity: f64,
    didt_severity: f64,
) -> CycleWindow {
    let activity = activity.clamp(0.0, 1.0);
    let severity = didt_severity.clamp(0.0, 1.0);
    // Quiet base: small shot noise + shallow run/stall modulation.
    let shot_sigma = 0.010 + 0.020 * severity;
    let base_mag = 0.012 + 0.020 * severity;
    let base_dwell = 120.0;
    // Rare large events. The quadratic severity dependence separates
    // noise-critical codes (fft, radix) from calm ones (cholesky) by an
    // order of magnitude in event rate, as Table 2's spread requires.
    let events_per_window = 0.18 * severity * severity + 0.012;
    let event_prob_per_cycle = events_per_window / cycles as f64;
    let event_mag = (0.28 + 0.17 * severity) * (1.0 - 0.40 * activity);
    let event_dwell = 120.0;

    let mut multipliers = Vec::with_capacity(cycles);
    let mut high = rng.bernoulli(0.5);
    let mut base_remaining = sample_dwell(rng, base_dwell);
    let mut event_remaining = 0usize;
    let mut event_sign = 1.0;
    let mut event_scale = 1.0;
    let mut sum = 0.0;
    for _ in 0..cycles {
        if base_remaining == 0 {
            high = !high;
            base_remaining = sample_dwell(rng, base_dwell);
        }
        base_remaining -= 1;
        if event_remaining > 0 {
            event_remaining -= 1;
        } else if rng.bernoulli(event_prob_per_cycle) {
            event_remaining = sample_dwell(rng, event_dwell);
            // Heavy-tailed magnitudes: most events are moderate, only
            // the occasional full-magnitude one crosses the emergency
            // threshold — keeping emergencies rare while still setting
            // the run's maximum noise.
            let u = rng.uniform_f64();
            event_scale = 0.15 + 0.85 * u.powi(4);
            event_sign = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
        }
        let base = if high { 1.0 + base_mag } else { 1.0 - base_mag };
        let event = if event_remaining > 0 {
            event_sign * event_mag * event_scale
        } else {
            0.0
        };
        let v = (base + event + shot_sigma * rng.normal()).max(0.0);
        sum += v;
        multipliers.push(v);
    }
    // Renormalise so the window's mean current equals the µs-scale value.
    if sum > 0.0 {
        let scale = cycles as f64 / sum;
        for v in &mut multipliers {
            *v *= scale;
        }
    }
    CycleWindow { multipliers }
}

/// Geometric dwell time with the given mean (at least 1 cycle).
fn sample_dwell(rng: &mut DeterministicRng, mean: f64) -> usize {
    let u = rng.uniform_f64().max(1e-12);
    ((-(1.0 - u).ln()) * mean).ceil().max(1.0) as usize
}

/// The largest cycle-to-cycle current step in a window — a proxy for the
/// worst di/dt event, which first-droop noise tracks.
pub fn max_didt_step(window: &CycleWindow) -> f64 {
    window
        .multipliers
        .windows(2)
        .map(|w| (w[1] - w[0]).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::new(0xABCD)
    }

    #[test]
    fn window_has_requested_length_and_unit_mean() {
        let w = generate_window(&mut rng(), WINDOW_CYCLES, 0.5, 0.5);
        assert_eq!(w.len(), WINDOW_CYCLES);
        let mean = w.multipliers().iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn multipliers_are_non_negative() {
        let w = generate_window(&mut rng(), 5000, 0.3, 1.0);
        assert!(w.multipliers().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn higher_severity_means_larger_swings() {
        let mut r1 = rng();
        let mut r2 = rng();
        let calm = generate_window(&mut r1, 4000, 0.5, 0.1);
        let wild = generate_window(&mut r2, 4000, 0.5, 0.9);
        let var = |w: &CycleWindow| {
            let m = w.multipliers().iter().sum::<f64>() / w.len() as f64;
            w.multipliers().iter().map(|v| (v - m).powi(2)).sum::<f64>() / w.len() as f64
        };
        assert!(var(&wild) > 2.0 * var(&calm));
    }

    #[test]
    fn didt_step_grows_with_severity() {
        let mut r1 = rng();
        let mut r2 = rng();
        let calm = generate_window(&mut r1, 4000, 0.5, 0.1);
        let wild = generate_window(&mut r2, 4000, 0.5, 0.9);
        assert!(max_didt_step(&wild) > max_didt_step(&calm));
    }

    #[test]
    fn analysis_region_skips_warmup() {
        let w = generate_window(&mut rng(), WINDOW_CYCLES, 0.5, 0.5);
        assert_eq!(w.analysis().len(), WINDOW_CYCLES - WARMUP_CYCLES);
    }

    #[test]
    fn deterministic_given_same_rng_state() {
        let a = generate_window(&mut rng(), 1000, 0.4, 0.6);
        let b = generate_window(&mut rng(), 1000, 0.4, 0.6);
        assert_eq!(a, b);
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(WINDOW_COUNT, 200);
        assert_eq!(WINDOW_CYCLES, 2000);
        assert_eq!(WARMUP_CYCLES, 1000);
    }
}
