//! Per-benchmark stochastic-process parameters.

use crate::benchmark::Benchmark;

/// The parameters of a benchmark's synthetic activity process.
///
/// All activity values are utilisations in `[0, 1]`; the `power` crate
/// later converts them to watts. Fields were calibrated so that the
/// derived experiments land in the bands the paper reports (e.g. Fig. 7's
/// conversion-loss savings between ~10 % for `cholesky` and ~50 % for
/// `raytrace`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Mean core utilisation over the ROI.
    pub mean_util: f64,
    /// Amplitude of the slow program-phase oscillation (added to and
    /// subtracted from `mean_util` as phases come and go).
    pub phase_depth: f64,
    /// Period of the program-phase oscillation in microseconds.
    pub phase_period_us: f64,
    /// Standard deviation of the AR(1) activity noise.
    pub noise_sigma: f64,
    /// AR(1) pole (0 = white noise, →1 = slowly wandering).
    pub noise_ar: f64,
    /// Expected bursts per millisecond (barrier exits, task-queue refills).
    pub burst_rate_per_ms: f64,
    /// Additional utilisation during a burst.
    pub burst_gain: f64,
    /// Burst duration in microseconds.
    pub burst_len_us: f64,
    /// How memory-bound the benchmark is in `[0, 1]`: scales L2/L3/NOC/MC
    /// activity relative to core logic activity.
    pub memory_intensity: f64,
    /// Per-thread (per-core) utilisation imbalance: each core's mean is
    /// scaled by `1 ± imbalance` (deterministically per core).
    pub thread_imbalance: f64,
    /// How synchronised the threads' program phases are, in `[0, 1]`:
    /// barrier-heavy codes (LU, FFT, ocean) march in lockstep, so their
    /// chip-level power swings with the phase; task-parallel codes
    /// (raytrace, radiosity) drift apart and average out.
    pub phase_sync: f64,
    /// Cycle-level current swing for PDN windows in `[0, 1]` — large for
    /// noise-critical bursty codes like `fft` and `radix`.
    pub didt_severity: f64,
}

impl BenchmarkProfile {
    /// The calibrated profile of a benchmark.
    pub fn of(benchmark: Benchmark) -> Self {
        use Benchmark::*;
        match benchmark {
            // Sustained high power: the worst case for gating savings
            // (Fig. 7 reports only 10.4 % for cholesky).
            Cholesky => BenchmarkProfile {
                mean_util: 0.86,
                phase_depth: 0.05,
                phase_period_us: 800.0,
                noise_sigma: 0.03,
                noise_ar: 0.90,
                burst_rate_per_ms: 0.5,
                burst_gain: 0.06,
                burst_len_us: 40.0,
                memory_intensity: 0.55,
                thread_imbalance: 0.05,
                phase_sync: 0.55,
                didt_severity: 0.35,
            },
            // Light load: the best case for gating savings (49.8 %).
            Raytrace => BenchmarkProfile {
                mean_util: 0.24,
                phase_depth: 0.06,
                phase_period_us: 600.0,
                noise_sigma: 0.05,
                noise_ar: 0.85,
                burst_rate_per_ms: 2.0,
                burst_gain: 0.10,
                burst_len_us: 25.0,
                memory_intensity: 0.35,
                thread_imbalance: 0.20,
                phase_sync: 0.2,
                didt_severity: 0.30,
            },
            // Strong program phases: the Fig. 6/8 showcase.
            LuNcb => BenchmarkProfile {
                mean_util: 0.58,
                phase_depth: 0.28,
                phase_period_us: 500.0,
                noise_sigma: 0.04,
                noise_ar: 0.88,
                burst_rate_per_ms: 1.0,
                burst_gain: 0.08,
                burst_len_us: 30.0,
                memory_intensity: 0.45,
                thread_imbalance: 0.10,
                phase_sync: 0.9,
                didt_severity: 0.40,
            },
            LuCb => BenchmarkProfile {
                mean_util: 0.64,
                phase_depth: 0.20,
                phase_period_us: 550.0,
                noise_sigma: 0.04,
                noise_ar: 0.88,
                burst_rate_per_ms: 1.0,
                burst_gain: 0.07,
                burst_len_us: 30.0,
                memory_intensity: 0.40,
                thread_imbalance: 0.08,
                phase_sync: 0.85,
                didt_severity: 0.35,
            },
            // Bursty, noise-critical: worst voltage noise under OracT
            // (Fig. 11/14).
            Fft => BenchmarkProfile {
                mean_util: 0.60,
                phase_depth: 0.22,
                phase_period_us: 300.0,
                noise_sigma: 0.08,
                noise_ar: 0.70,
                burst_rate_per_ms: 6.0,
                burst_gain: 0.22,
                burst_len_us: 12.0,
                memory_intensity: 0.70,
                thread_imbalance: 0.06,
                phase_sync: 0.9,
                didt_severity: 0.85,
            },
            Radix => BenchmarkProfile {
                mean_util: 0.55,
                phase_depth: 0.15,
                phase_period_us: 250.0,
                noise_sigma: 0.07,
                noise_ar: 0.72,
                burst_rate_per_ms: 5.0,
                burst_gain: 0.18,
                burst_len_us: 15.0,
                memory_intensity: 0.75,
                thread_imbalance: 0.05,
                phase_sync: 0.85,
                didt_severity: 0.70,
            },
            Barnes => BenchmarkProfile {
                mean_util: 0.55,
                phase_depth: 0.12,
                phase_period_us: 700.0,
                noise_sigma: 0.05,
                noise_ar: 0.85,
                burst_rate_per_ms: 2.0,
                burst_gain: 0.12,
                burst_len_us: 20.0,
                memory_intensity: 0.50,
                thread_imbalance: 0.15,
                phase_sync: 0.4,
                didt_severity: 0.55,
            },
            Fmm => BenchmarkProfile {
                mean_util: 0.50,
                phase_depth: 0.14,
                phase_period_us: 650.0,
                noise_sigma: 0.05,
                noise_ar: 0.85,
                burst_rate_per_ms: 1.5,
                burst_gain: 0.10,
                burst_len_us: 25.0,
                memory_intensity: 0.45,
                thread_imbalance: 0.15,
                phase_sync: 0.5,
                didt_severity: 0.45,
            },
            OceanCp => BenchmarkProfile {
                mean_util: 0.56,
                phase_depth: 0.18,
                phase_period_us: 400.0,
                noise_sigma: 0.06,
                noise_ar: 0.80,
                burst_rate_per_ms: 3.0,
                burst_gain: 0.12,
                burst_len_us: 18.0,
                memory_intensity: 0.70,
                thread_imbalance: 0.07,
                phase_sync: 0.8,
                didt_severity: 0.60,
            },
            OceanNcp => BenchmarkProfile {
                mean_util: 0.50,
                phase_depth: 0.18,
                phase_period_us: 420.0,
                noise_sigma: 0.06,
                noise_ar: 0.80,
                burst_rate_per_ms: 3.0,
                burst_gain: 0.12,
                burst_len_us: 18.0,
                memory_intensity: 0.75,
                thread_imbalance: 0.07,
                phase_sync: 0.8,
                didt_severity: 0.55,
            },
            Radiosity => BenchmarkProfile {
                mean_util: 0.45,
                phase_depth: 0.10,
                phase_period_us: 750.0,
                noise_sigma: 0.05,
                noise_ar: 0.86,
                burst_rate_per_ms: 2.0,
                burst_gain: 0.10,
                burst_len_us: 22.0,
                memory_intensity: 0.40,
                thread_imbalance: 0.18,
                phase_sync: 0.3,
                didt_severity: 0.40,
            },
            Volrend => BenchmarkProfile {
                mean_util: 0.34,
                phase_depth: 0.08,
                phase_period_us: 550.0,
                noise_sigma: 0.05,
                noise_ar: 0.84,
                burst_rate_per_ms: 2.5,
                burst_gain: 0.10,
                burst_len_us: 18.0,
                memory_intensity: 0.35,
                thread_imbalance: 0.20,
                phase_sync: 0.3,
                didt_severity: 0.35,
            },
            WaterNsquared => BenchmarkProfile {
                mean_util: 0.46,
                phase_depth: 0.10,
                phase_period_us: 680.0,
                noise_sigma: 0.04,
                noise_ar: 0.87,
                burst_rate_per_ms: 1.2,
                burst_gain: 0.08,
                burst_len_us: 25.0,
                memory_intensity: 0.35,
                thread_imbalance: 0.10,
                phase_sync: 0.6,
                didt_severity: 0.35,
            },
            WaterSpatial => BenchmarkProfile {
                mean_util: 0.40,
                phase_depth: 0.10,
                phase_period_us: 640.0,
                noise_sigma: 0.04,
                noise_ar: 0.87,
                burst_rate_per_ms: 1.2,
                burst_gain: 0.08,
                burst_len_us: 25.0,
                memory_intensity: 0.35,
                thread_imbalance: 0.12,
                phase_sync: 0.6,
                didt_severity: 0.35,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_physical() {
        for b in Benchmark::ALL {
            let p = BenchmarkProfile::of(b);
            assert!((0.0..=1.0).contains(&p.mean_util), "{b}");
            assert!(
                p.phase_depth >= 0.0 && p.mean_util + p.phase_depth <= 1.05,
                "{b}"
            );
            assert!(p.phase_period_us > 0.0, "{b}");
            assert!((0.0..1.0).contains(&p.noise_ar), "{b}");
            assert!((0.0..=1.0).contains(&p.memory_intensity), "{b}");
            assert!((0.0..=1.0).contains(&p.didt_severity), "{b}");
            assert!((0.0..=1.0).contains(&p.phase_sync), "{b}");
            assert!(p.burst_len_us > 0.0, "{b}");
        }
    }

    #[test]
    fn cholesky_is_heaviest_raytrace_is_lightest() {
        let utils: Vec<(Benchmark, f64)> = Benchmark::ALL
            .iter()
            .map(|&b| (b, BenchmarkProfile::of(b).mean_util))
            .collect();
        let max = utils
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let min = utils
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max.0, Benchmark::Cholesky);
        assert_eq!(min.0, Benchmark::Raytrace);
    }

    #[test]
    fn fft_is_the_noise_critical_one() {
        let fft = BenchmarkProfile::of(Benchmark::Fft);
        for b in Benchmark::ALL {
            if b != Benchmark::Fft {
                assert!(fft.didt_severity >= BenchmarkProfile::of(b).didt_severity);
            }
        }
    }

    #[test]
    fn lu_ncb_has_pronounced_phases() {
        let p = BenchmarkProfile::of(Benchmark::LuNcb);
        assert!(p.phase_depth >= 0.25);
    }

    #[test]
    fn barrier_codes_are_more_synchronised_than_task_parallel() {
        let lu = BenchmarkProfile::of(Benchmark::LuNcb);
        let rayt = BenchmarkProfile::of(Benchmark::Raytrace);
        let radio = BenchmarkProfile::of(Benchmark::Radiosity);
        assert!(lu.phase_sync > 0.8);
        assert!(rayt.phase_sync < 0.5);
        assert!(radio.phase_sync < 0.5);
    }
}
