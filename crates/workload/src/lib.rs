//! Synthetic SPLASH-2x workloads for the ThermoGater reproduction.
//!
//! The paper drives its evaluation with per-functional-unit power traces
//! of the 14 SPLASH-2x benchmarks (8 threads, region of interest),
//! collected from the SNIPER+McPAT toolchain. Neither those binaries nor
//! the simulators exist in this environment, so this crate substitutes a
//! *synthetic trace generator*: each benchmark is modelled as a
//! deterministic parametric stochastic process — mean utilisation, program
//! -phase structure, burstiness, memory intensity, thread imbalance —
//! calibrated to the per-benchmark behaviour the paper reports (sustained
//! high power for `cholesky`, light load for `raytrace`, strong phases for
//! `lu_ncb`, bursty noise-critical behaviour for `fft`, …).
//!
//! ThermoGater itself only ever sees *activity/power traces*, never
//! instructions, so this substitution exercises exactly the same code
//! paths as the original toolchain (see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use workload::{Benchmark, TraceGenerator};
//! use floorplan::reference::power8_like;
//! use simkit::units::Seconds;
//!
//! let chip = power8_like();
//! let gen = TraceGenerator::new(&chip);
//! let trace = gen.generate(Benchmark::LuNcb, Seconds::from_millis(2.0));
//! assert_eq!(trace.activity().channel_count(), chip.blocks().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod microtrace;
mod mix;
mod profile;
pub mod replay;
mod trace;

pub use benchmark::Benchmark;
pub use mix::{WorkloadMix, WorkloadSpec};
pub use profile::BenchmarkProfile;
pub use trace::{ActivityTrace, TraceGenerator};
