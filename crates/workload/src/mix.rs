//! Multiprogrammed workloads: a different benchmark per core.
//!
//! Section 7 of the paper notes that ThermoGater "controls each
//! voltage-domain independently and accounts for the evolution of the
//! power conversion efficiency with the workload. Therefore, ThermoGater
//! policies can accommodate heterogeneity in the workload, including
//! multi-programming." This module supplies that heterogeneity: a
//! [`WorkloadMix`] assigns one benchmark to each core, and a
//! [`WorkloadSpec`] unifies single-program and multiprogrammed runs.

use crate::benchmark::Benchmark;
use crate::profile::BenchmarkProfile;
use std::fmt;

/// A per-core benchmark assignment for a multiprogrammed run.
///
/// # Examples
///
/// ```
/// use workload::{Benchmark, WorkloadMix};
///
/// let mix = WorkloadMix::alternating(Benchmark::Fft, Benchmark::Raytrace, 8);
/// assert_eq!(mix.core_count(), 8);
/// assert_eq!(mix.benchmark_for_core(0), Benchmark::Fft);
/// assert_eq!(mix.benchmark_for_core(1), Benchmark::Raytrace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadMix {
    per_core: Vec<Benchmark>,
}

impl WorkloadMix {
    /// Creates a mix from explicit per-core assignments.
    ///
    /// # Panics
    ///
    /// Panics when `per_core` is empty.
    pub fn new(per_core: Vec<Benchmark>) -> Self {
        assert!(!per_core.is_empty(), "a mix needs at least one core");
        WorkloadMix { per_core }
    }

    /// Every core runs the same benchmark (equivalent to a single-program
    /// run, useful for A/B testing the mix machinery).
    pub fn uniform(benchmark: Benchmark, cores: usize) -> Self {
        WorkloadMix::new(vec![benchmark; cores])
    }

    /// Cores alternate between two benchmarks (`a` on even cores).
    pub fn alternating(a: Benchmark, b: Benchmark, cores: usize) -> Self {
        WorkloadMix::new((0..cores).map(|i| if i % 2 == 0 { a } else { b }).collect())
    }

    /// Number of cores covered.
    pub fn core_count(&self) -> usize {
        self.per_core.len()
    }

    /// The benchmark assigned to core `core` (wraps around when the chip
    /// has more cores than the mix specifies).
    pub fn benchmark_for_core(&self, core: usize) -> Benchmark {
        self.per_core[core % self.per_core.len()]
    }

    /// The per-core assignments.
    pub fn assignments(&self) -> &[Benchmark] {
        &self.per_core
    }

    /// A deterministic seed mixing every assignment.
    pub fn seed(&self) -> u64 {
        self.per_core
            .iter()
            .enumerate()
            .fold(0x6D69_7800u64, |acc, (i, b)| {
                acc.rotate_left(7) ^ b.seed().wrapping_mul(i as u64 + 1)
            })
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mix(")?;
        for (i, b) in self.per_core.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

/// What a simulation runs: one benchmark on all threads, or a
/// multiprogrammed mix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// The classic 8-thread single-program run.
    Single(Benchmark),
    /// One benchmark per core.
    Mix(WorkloadMix),
}

impl WorkloadSpec {
    /// The benchmark of core `core` under this spec.
    pub fn benchmark_for_core(&self, core: usize) -> Benchmark {
        match self {
            WorkloadSpec::Single(b) => *b,
            WorkloadSpec::Mix(m) => m.benchmark_for_core(core),
        }
    }

    /// The profile of core `core` under this spec.
    pub fn profile_for_core(&self, core: usize) -> BenchmarkProfile {
        BenchmarkProfile::of(self.benchmark_for_core(core))
    }

    /// The single benchmark, when this is a single-program spec.
    pub fn as_single(&self) -> Option<Benchmark> {
        match self {
            WorkloadSpec::Single(b) => Some(*b),
            WorkloadSpec::Mix(_) => None,
        }
    }

    /// Deterministic seed.
    pub fn seed(&self) -> u64 {
        match self {
            WorkloadSpec::Single(b) => b.seed(),
            WorkloadSpec::Mix(m) => m.seed(),
        }
    }

    /// Mean di/dt severity over `cores` cores (used for shared/uncore
    /// domains).
    pub fn mean_didt_severity(&self, cores: usize) -> f64 {
        let cores = cores.max(1);
        (0..cores)
            .map(|c| self.profile_for_core(c).didt_severity)
            .sum::<f64>()
            / cores as f64
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Single(b) => write!(f, "{b}"),
            WorkloadSpec::Mix(m) => write!(f, "{m}"),
        }
    }
}

impl From<Benchmark> for WorkloadSpec {
    fn from(benchmark: Benchmark) -> Self {
        WorkloadSpec::Single(benchmark)
    }
}

impl From<WorkloadMix> for WorkloadSpec {
    fn from(mix: WorkloadMix) -> Self {
        WorkloadSpec::Mix(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_assigns_by_parity() {
        let mix = WorkloadMix::alternating(Benchmark::Fft, Benchmark::Volrend, 4);
        assert_eq!(mix.benchmark_for_core(0), Benchmark::Fft);
        assert_eq!(mix.benchmark_for_core(1), Benchmark::Volrend);
        assert_eq!(mix.benchmark_for_core(2), Benchmark::Fft);
        // Wrap-around for larger chips.
        assert_eq!(mix.benchmark_for_core(5), Benchmark::Volrend);
    }

    #[test]
    fn uniform_mix_matches_single() {
        let mix = WorkloadMix::uniform(Benchmark::Barnes, 8);
        let spec = WorkloadSpec::from(mix);
        for c in 0..8 {
            assert_eq!(spec.benchmark_for_core(c), Benchmark::Barnes);
        }
    }

    #[test]
    fn seeds_depend_on_assignment_order() {
        let a = WorkloadMix::new(vec![Benchmark::Fft, Benchmark::Radix]);
        let b = WorkloadMix::new(vec![Benchmark::Radix, Benchmark::Fft]);
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn display_labels() {
        let mix = WorkloadMix::new(vec![Benchmark::Fft, Benchmark::Raytrace]);
        assert_eq!(mix.to_string(), "mix(fft+rayt)");
        assert_eq!(
            WorkloadSpec::Single(Benchmark::Cholesky).to_string(),
            "chol"
        );
    }

    #[test]
    fn single_spec_roundtrip() {
        let spec: WorkloadSpec = Benchmark::LuNcb.into();
        assert_eq!(spec.as_single(), Some(Benchmark::LuNcb));
        assert_eq!(spec.seed(), Benchmark::LuNcb.seed());
        let mix_spec: WorkloadSpec = WorkloadMix::uniform(Benchmark::LuNcb, 2).into();
        assert_eq!(mix_spec.as_single(), None);
    }

    #[test]
    fn mean_didt_severity_averages_cores() {
        let fft = BenchmarkProfile::of(Benchmark::Fft).didt_severity;
        let rayt = BenchmarkProfile::of(Benchmark::Raytrace).didt_severity;
        let spec: WorkloadSpec =
            WorkloadMix::alternating(Benchmark::Fft, Benchmark::Raytrace, 8).into();
        let mean = spec.mean_didt_severity(8);
        assert!((mean - (fft + rayt) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_mix_panics() {
        WorkloadMix::new(vec![]);
    }
}
