//! Umbrella crate for the ThermoGater reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`; the actual library
//! surface lives in the member crates:
//!
//! * [`thermogater`] — the paper's contribution: the thermally-aware
//!   regulator-gating governor and its policies;
//! * [`floorplan`], [`vreg`], [`workload`], [`power`], [`thermal`],
//!   [`pdn`] — the substrates (chip geometry, regulator models, synthetic
//!   SPLASH-2x power traces, power/thermal/voltage-noise simulation);
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper;
//! * [`simkit`] — shared units/geometry/solvers toolkit.

pub use experiments;
pub use floorplan;
pub use pdn;
pub use power;
pub use simkit;
pub use thermal;
pub use thermogater;
pub use vreg;
pub use workload;
