//! End-to-end telemetry: a real engine run traced through
//! [`experiments::telemetry::TelemetryCtx`] must produce a `trace.jsonl`
//! whose every line is a well-formed event, plus a self-validating
//! `manifest.json` whose event total equals the trace's line count —
//! and the sweep executor must do the same for a whole grid.

use experiments::context::ExpOptions;
use experiments::telemetry::TelemetryCtx;
use floorplan::reference::power8_like;
use simkit::telemetry::json::{parse, JsonValue};
use simkit::telemetry::manifest::{CellManifest, RunManifest, MANIFEST_FILE, TRACE_FILE};
use simkit::telemetry::EventKind;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;
use thermogater::{PolicyKind, SimulationEngine};
use workload::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tg-telemetry-it-{tag}-{}", std::process::id()))
}

/// Parses every trace line, asserting the common envelope, and returns
/// (line count, set of seen kinds).
fn scan_trace(dir: &Path) -> (u64, BTreeSet<&'static str>) {
    let text = std::fs::read_to_string(dir.join(TRACE_FILE)).expect("trace.jsonl written");
    let mut kinds = BTreeSet::new();
    let mut lines = 0u64;
    for (i, line) in text.lines().enumerate() {
        let value = parse(line).unwrap_or_else(|e| panic!("line {}: bad JSON: {e}", i + 1));
        assert!(
            matches!(value, JsonValue::Obj(_)),
            "line {}: not an object",
            i + 1
        );
        let kind_str = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("line {}: missing kind", i + 1));
        let kind = EventKind::parse(kind_str)
            .unwrap_or_else(|| panic!("line {}: unknown kind {kind_str:?}", i + 1));
        let t = value
            .get("t")
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("line {}: missing t", i + 1));
        assert!(t.is_finite() && t >= 0.0, "line {}: bad t {t}", i + 1);
        assert!(
            value
                .get("name")
                .and_then(JsonValue::as_str)
                .is_some_and(|n| !n.is_empty()),
            "line {}: missing name",
            i + 1
        );
        kinds.insert(kind.as_str());
        lines += 1;
    }
    (lines, kinds)
}

fn read_manifest(dir: &Path) -> RunManifest {
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("manifest.json written");
    RunManifest::from_json(text.trim()).expect("manifest self-validates")
}

#[test]
fn engine_run_produces_valid_trace_and_manifest() {
    let dir = temp_dir("engine");
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = TelemetryCtx::create(&dir).unwrap();

    let chip = power8_like();
    let mut engine = SimulationEngine::new(&chip, ExpOptions::tiny().engine_config());
    let (telemetry, counter) = ctx.cell_handle();
    engine.set_telemetry(telemetry);
    let started = Instant::now();
    // OracVT exercises the emergency path, so every event kind appears.
    engine.run(Benchmark::LuNcb, PolicyKind::OracVT).unwrap();

    let mut manifest = RunManifest::new("integration-test");
    manifest.push_config("benchmark", Benchmark::LuNcb.label());
    manifest.push_config("policy", "oracvt");
    manifest.cells.push(CellManifest {
        label: "lu_ncb-oracvt".into(),
        seconds: started.elapsed().as_secs_f64(),
        events: counter.count(),
        cached: false,
    });
    ctx.finish(&mut manifest).unwrap();

    let (lines, kinds) = scan_trace(&dir);
    let back = read_manifest(&dir);
    assert_eq!(
        lines,
        back.total_events(),
        "trace line count must equal the manifest's events_total"
    );
    assert!(lines > 0, "traced run emitted no events");
    for required in [
        EventKind::SpanStart,
        EventKind::SpanEnd,
        EventKind::Counter,
        EventKind::Gauge,
        EventKind::Histogram,
        EventKind::Gating,
        EventKind::Emergency,
        EventKind::Solve,
        EventKind::Progress,
    ] {
        assert!(
            kinds.contains(required.as_str()),
            "event kind {:?} missing from trace (saw {kinds:?})",
            required.as_str()
        );
    }
    // The registry aggregated what the trace recorded.
    assert!(ctx.registry().counter("engine.decisions") > 0);
    assert!(ctx
        .registry()
        .histogram("engine.window_noise_pct")
        .is_some_and(|h| h.count > 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_grid_writes_manifest_covering_every_cell() {
    let dir = temp_dir("sweep");
    let _ = std::fs::remove_dir_all(&dir);
    let benchmarks = [Benchmark::Fft];
    let policies = [PolicyKind::AllOn, PolicyKind::OracT];
    let opts = ExpOptions::tiny().with_threads(2).with_telemetry(&dir);
    let records = experiments::sweep::grid(&opts, &benchmarks, &policies);
    assert_eq!(records.len(), 2);

    let (lines, kinds) = scan_trace(&dir);
    let manifest = read_manifest(&dir);
    assert_eq!(manifest.cells.len(), 2, "one manifest cell per grid cell");
    let labels: BTreeSet<&str> = manifest.cells.iter().map(|c| c.label.as_str()).collect();
    assert!(labels.contains("fft-allon") && labels.contains("fft-oract"));
    assert_eq!(lines, manifest.total_events());
    // Sweep progress events ride the run-level handle.
    assert!(kinds.contains(EventKind::Progress.as_str()));
    for cell in &manifest.cells {
        assert!(
            cell.cached || cell.events > 0,
            "uncached cell {} traced no events",
            cell.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_sweep_produces_per_worker_tracks_with_paired_spans() {
    let dir = temp_dir("tracks");
    let _ = std::fs::remove_dir_all(&dir);
    let benchmarks = [Benchmark::LuNcb];
    let policies = [PolicyKind::OracV, PolicyKind::PracT];
    let opts = ExpOptions::tiny().with_threads(2).with_telemetry(&dir);
    // Cached cells replay results without tracing, so force both cells
    // to run live: drop any cache left behind by earlier test runs.
    for policy in policies {
        let cache = experiments::sweep::cache_path(&opts, Benchmark::LuNcb, policy);
        let _ = std::fs::remove_file(cache);
    }
    let records = experiments::sweep::grid(&opts, &benchmarks, &policies);
    assert_eq!(records.len(), 2);

    // Folding the cross-thread trace into call trees must find every
    // span paired on its own track, with one track per sweep cell.
    let profile = simkit::telemetry::prof::Profile::from_path(&dir.join(TRACE_FILE))
        .expect("trace folds into a profile");
    assert_eq!(
        profile.pairing_errors(),
        0,
        "cross-thread spans must pair cleanly per track"
    );
    assert_eq!(profile.open_spans(), 0, "all spans must close");
    let track_ids: BTreeSet<u64> = profile.tracks().iter().map(|t| t.track).collect();
    assert!(
        track_ids.contains(&1) && track_ids.contains(&2),
        "each worker cell must trace on its own track (saw {track_ids:?})"
    );
    for track in profile.tracks() {
        if track.track == 0 {
            continue; // run-level handle carries only instants
        }
        assert!(
            track.root_inclusive_s() > 0.0,
            "track {} recorded no span time",
            track.track
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
