//! Proves the transient thermal solve performs zero heap allocation per
//! step: a counting global allocator wraps the system allocator and the
//! test asserts the per-thread allocation count does not move across
//! warmed-up `TransientStepper::step` calls.

use floorplan::reference::power8_like;
use simkit::units::{Seconds, Watts};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use thermal::{PowerMap, ThermalConfig, ThermalModel};

thread_local! {
    static THREAD_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

/// System allocator with a per-thread allocation counter. Per-thread
/// counting keeps the test-harness threads (and any other test in this
/// binary) from polluting the measurement.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// `try_with` guards against TLS teardown re-entering the allocator.
fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> usize {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn transient_step_performs_no_heap_allocation() {
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    let mut power = PowerMap::new(&model);
    let per_block = Watts::new(100.0 / chip.blocks().len() as f64);
    for block in chip.blocks() {
        power.add_block(block.id(), per_block).unwrap();
    }
    let mut state = model.steady_state(&power).unwrap();
    let mut stepper = model.stepper(Seconds::from_micros(20.0));

    // Warm up: first steps may grow solver scratch to capacity.
    for _ in 0..5 {
        stepper.step(&mut state, &power).unwrap();
    }

    let before = thread_allocs();
    for _ in 0..100 {
        stepper.step(&mut state, &power).unwrap();
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "transient stepping allocated {} times over 100 steps",
        after - before
    );
}

/// Telemetry with the no-op sink must not reintroduce allocations:
/// the handle caches the sink's inactive flag, so no [`Event`]
/// (name/field vector) is ever built on the hot path.
///
/// [`Event`]: simkit::telemetry::Event
#[test]
fn transient_step_with_noop_sink_performs_no_heap_allocation() {
    use simkit::telemetry::{NoopSink, Telemetry};
    use std::sync::Arc;

    let chip = power8_like();
    let mut model = ThermalModel::new(&chip, ThermalConfig::coarse());
    model.set_telemetry(Telemetry::with_sink(Arc::new(NoopSink)));
    let mut power = PowerMap::new(&model);
    let per_block = Watts::new(100.0 / chip.blocks().len() as f64);
    for block in chip.blocks() {
        power.add_block(block.id(), per_block).unwrap();
    }
    let mut state = model.steady_state(&power).unwrap();
    // The stepper inherits the model's telemetry handle at creation.
    let mut stepper = model.stepper(Seconds::from_micros(20.0));

    for _ in 0..5 {
        stepper.step(&mut state, &power).unwrap();
    }

    let before = thread_allocs();
    for _ in 0..100 {
        stepper.step(&mut state, &power).unwrap();
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "no-op-sink stepping allocated {} times over 100 steps",
        after - before
    );
}
