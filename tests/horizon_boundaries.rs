//! Horizon-boundary tests for the sensing/prediction pipeline: what the
//! governor sees at t = 0 (nothing recorded yet), during warm-up
//! (t < sensing delay), exactly at t = delay, and at the end of a trace;
//! plus the WMA forecaster's behaviour at the edges of its 3-point
//! window. A `simkit::check` property pins the sensor ring buffer
//! against an O(n)-history reference model for arbitrary latencies and
//! record counts.

use simkit::check::{self, CheckConfig, Checker};
use simkit::units::{Seconds, Watts};
use thermogater::{DomainPowerForecaster, ThermalPredictor, ThermalSensorArray};

fn sensors(latency_steps: usize) -> ThermalSensorArray {
    ThermalSensorArray::new(
        1,
        Seconds::from_micros(latency_steps as f64 * 10.0),
        Seconds::from_micros(10.0),
    )
    .with_quantisation(0.0)
}

/// t = 0: nothing recorded yet, the governor reads the cold default.
#[test]
fn sensor_before_first_snapshot_reads_zero() {
    let s = sensors(4);
    assert_eq!(s.read(), vec![0.0]);
}

/// 0 < t < delay: the lag clamps to the oldest snapshot that exists, so
/// the reading tracks the *first* recorded instant until the pipeline
/// fills.
#[test]
fn sensor_warmup_clamps_to_first_snapshot() {
    let mut s = sensors(4);
    for k in 0..4 {
        s.record(&[10.0 + k as f64]);
        // k+1 snapshots recorded; latency 4 still exceeds what exists.
        assert_eq!(s.read(), vec![10.0], "after {} snapshots", k + 1);
    }
}

/// t = delay exactly: the first snapshot is now precisely `latency`
/// old, and every later read lags by exactly `latency` steps.
#[test]
fn sensor_reaches_exact_lag_at_the_delay_boundary() {
    let mut s = sensors(4);
    for k in 0..5 {
        s.record(&[10.0 + k as f64]);
    }
    // Snapshot 4 is newest; latency 4 selects snapshot 0.
    assert_eq!(s.read(), vec![10.0]);
    s.record(&[15.0]);
    assert_eq!(s.read(), vec![11.0]);
}

/// End of trace: after the final snapshot the reading is the value from
/// `latency` steps before the end — the governor never sees the last
/// `latency` snapshots.
#[test]
fn sensor_at_end_of_trace_lags_the_final_snapshots() {
    let mut s = sensors(3);
    let n = 20;
    for k in 0..n {
        s.record(&[k as f64]);
    }
    assert_eq!(s.read(), vec![(n - 1 - 3) as f64]);
}

/// Zero-latency sensors are transparent: every read returns the latest
/// record, including the very first.
#[test]
fn zero_latency_sensor_is_transparent() {
    let mut s = sensors(0);
    s.record(&[42.5]);
    assert_eq!(s.read(), vec![42.5]);
    s.record(&[43.25]);
    assert_eq!(s.read(), vec![43.25]);
}

/// Quantisation applies to the *read*, not the stored truth: the default
/// 0.25 °C grid rounds to the nearest step.
#[test]
fn sensor_quantisation_rounds_reads_to_grid() {
    let mut s = ThermalSensorArray::new(1, Seconds::ZERO, Seconds::from_micros(10.0));
    s.record(&[61.37]);
    assert_eq!(s.read(), vec![61.25]);
    let mut s = s.with_quantisation(0.5);
    s.record(&[61.37]);
    assert_eq!(s.read(), vec![61.5]);
}

/// Property: for any latency and any record sequence the ring buffer
/// agrees with a reference model that keeps the whole history — reads
/// return `history[len-1 - min(latency, len-1)]`, or 0 before any
/// record.
#[test]
fn sensor_ring_buffer_matches_full_history_model() {
    let gen = (
        check::usize_in(0, 8),
        check::vec_of(check::f64_in(0.0, 100.0), 0, 24),
    );
    Checker::new(CheckConfig {
        seed: 0xA00A,
        cases: 64,
        max_shrink_evals: 256,
        corpus: Some(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus").into()),
    })
    .assert("core.sensor_lag", &gen, |(latency, truths)| {
        let mut s = sensors(*latency);
        let mut history: Vec<f64> = Vec::new();
        // Read before any record.
        check::ensure(s.read() == vec![0.0], || "cold read not zero".to_string())?;
        for &t in truths {
            s.record(&[t]);
            history.push(t);
            let lag = (*latency).min(history.len() - 1);
            let expect = history[history.len() - 1 - lag];
            let got = s.read()[0];
            check::ensure(got == expect, || {
                format!(
                    "latency {latency}, {} records: read {got}, reference {expect}",
                    history.len()
                )
            })?;
        }
        Ok(())
    });
}

/// The closed-loop governor through the delayed-measurement path: the
/// integral controller fed `delay`-step-old readings of the reference
/// plant must still satisfy the tracking oracle, with the tolerance
/// widened linearly by the known delay bound. At delay 0 the base
/// tolerance itself must hold — the widening is headroom for lag-induced
/// overshoot, not a blanket excuse.
#[test]
fn delayed_measurements_still_track_within_widened_tolerance() {
    use experiments::verify::{run_plant, PlantParams};
    use thermogater::GovernorConfig;
    let cfg = GovernorConfig::standard();
    let sensitivity = 20.0;
    let setpoint = 45.0 + 0.5 * sensitivity;
    let base_tol = 0.02 * sensitivity;
    for delay in [0usize, 2, 4, 8] {
        let plant = PlantParams {
            sensitivity,
            ambient: 45.0,
            lag: 0.5,
            delay,
        };
        let trace = run_plant(&cfg, &plant, setpoint, 600);
        let tol = base_tol * (1.0 + delay as f64);
        for (k, e) in trace.errors.iter().enumerate().skip(450) {
            assert!(e.is_finite(), "delay {delay}, step {k}: non-finite error");
            assert!(
                e.abs() <= tol,
                "delay {delay}, step {k}: |error| {} above widened tolerance {tol}",
                e.abs()
            );
        }
    }
}

/// Property form of the above: any reachable setpoint, any plant
/// sensitivity, any delay within the engine's sensor-latency bound
/// (≤ 8 steps) — tracking holds at the delay-widened tolerance.
#[test]
fn delayed_tracking_property_across_generated_plants() {
    use experiments::verify::{run_plant, PlantParams};
    use thermogater::GovernorConfig;
    let gen = (
        check::f64_in(2.0, 30.0),
        check::f64_in(0.0, 0.85),
        check::usize_in(0, 8),
    );
    Checker::new(CheckConfig {
        seed: 0xA00C,
        cases: 32,
        max_shrink_evals: 256,
        corpus: Some(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus").into()),
    })
    .assert("core.delayed_tracking", &gen, |&(sens, frac, delay)| {
        let plant = PlantParams {
            sensitivity: sens,
            ambient: 45.0,
            lag: 0.5,
            delay,
        };
        let setpoint = plant.ambient + frac * sens;
        let trace = run_plant(&GovernorConfig::standard(), &plant, setpoint, 600);
        let tol = 0.02 * sens.max(1.0) * (1.0 + delay as f64);
        for (k, e) in trace.errors.iter().enumerate().skip(450) {
            check::ensure(e.is_finite() && e.abs() <= tol, || {
                format!(
                    "sens {sens}, delay {delay}, step {k}: |error| {} above {tol}",
                    e.abs()
                )
            })?;
        }
        Ok(())
    });
}

/// Before the first observation the forecaster hands back the caller's
/// fallback untouched — the t = 0 decision runs on nominal demand.
#[test]
fn forecaster_falls_back_before_any_history() {
    let f = DomainPowerForecaster::new(3);
    assert_eq!(f.forecast(0, Watts::new(7.25)), Watts::new(7.25));
    assert_eq!(f.forecast(2, Watts::ZERO), Watts::ZERO);
}

/// WMA over a partially filled window: with one point the forecast is
/// that point; with two the weights are 1 and 2.
#[test]
fn forecaster_partial_window_weights() {
    let mut f = DomainPowerForecaster::new(1);
    f.observe(&[Watts::new(10.0)]);
    assert!((f.forecast(0, Watts::ZERO).get() - 10.0).abs() < 1e-12);
    f.observe(&[Watts::new(20.0)]);
    // (1·10 + 2·20) / 3
    assert!((f.forecast(0, Watts::ZERO).get() - 50.0 / 3.0).abs() < 1e-12);
    f.observe(&[Watts::new(30.0)]);
    // (1·10 + 2·20 + 3·30) / 6
    assert!((f.forecast(0, Watts::ZERO).get() - 140.0 / 6.0).abs() < 1e-12);
}

/// At the far edge of the horizon the oldest point falls out of the
/// 3-point window entirely: a spike four decisions ago no longer
/// influences the forecast.
#[test]
fn forecaster_window_drops_history_beyond_horizon() {
    let mut f = DomainPowerForecaster::new(1);
    for p in [1000.0, 1.0, 2.0, 3.0] {
        f.observe(&[Watts::new(p)]);
    }
    assert!((f.forecast(0, Watts::ZERO).get() - 14.0 / 6.0).abs() < 1e-12);
}

/// The thermal predictor at the horizon's trivial boundary: ΔP = 0 means
/// "temperature stays", whatever θ is; a flat profiling pass calibrates
/// θ = 0 so *every* prediction degenerates to "stays".
#[test]
fn predictor_boundary_cases() {
    let pred = ThermalPredictor::from_thetas(vec![12.0]);
    assert_eq!(pred.predict(0, 63.5, Watts::ZERO), 63.5);

    let flat = ThermalPredictor::calibrate(&[vec![(0.0, 0.0); 4]]).unwrap();
    assert_eq!(flat.theta(0), 0.0);
    assert_eq!(flat.predict(0, 80.0, Watts::new(5.0)), 80.0);

    assert!(ThermalPredictor::calibrate(&[]).is_err());
}
