//! Shape tests against the paper's headline claims: who wins, in which
//! direction, by roughly what kind of margin. Absolute values differ
//! from the authors' testbed (our substrates are reimplementations), but
//! these orderings are the reproduction target (see EXPERIMENTS.md).

use floorplan::reference::power8_like;
use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn shape_config() -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(8.0),
        thermal: ThermalConfig::coarse(),
        noise_window_count: 40,
        profiling_decisions: 5,
        ..EngineConfig::standard()
    }
}

/// Section 6.1 / Fig. 7: loss savings are largest for light-load
/// applications and smallest for sustained-high-power ones.
#[test]
fn savings_shape_cholesky_low_raytrace_high() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, shape_config());
    let saving = |bench| {
        let all_on = engine.run(bench, PolicyKind::AllOn).unwrap();
        let gated = engine.run(bench, PolicyKind::OracT).unwrap();
        1.0 - gated.mean_total_vr_loss().get() / all_on.mean_total_vr_loss().get()
    };
    let chol = saving(Benchmark::Cholesky);
    let rayt = saving(Benchmark::Raytrace);
    assert!(chol > 0.0 && chol < 0.25, "cholesky saving {chol}");
    assert!(rayt > 0.30 && rayt < 0.70, "raytrace saving {rayt}");
    assert!(rayt > 2.0 * chol, "savings ordering violated");
}

/// Figs. 9/10: thermally-aware oracular gating beats all-on; Naïve
/// overshoots; OracV is the thermally worst gating policy.
///
/// Runs at the paper-faithful 64×64 thermal grid: the Naïve-vs-all-on
/// gap is a per-regulator-cell effect that the coarse test grid dilutes.
#[test]
fn thermal_policy_ordering_lu_ncb() {
    let chip = power8_like();
    let engine = SimulationEngine::new(
        &chip,
        EngineConfig {
            thermal: ThermalConfig::standard(),
            noise_window_count: 6,
            ..shape_config()
        },
    );
    let run = |p| engine.run(Benchmark::LuNcb, p).unwrap();
    let off = run(PolicyKind::OffChip);
    let all_on = run(PolicyKind::AllOn);
    let naive = run(PolicyKind::Naive);
    let oract = run(PolicyKind::OracT);
    let oracv = run(PolicyKind::OracV);

    // On-chip regulation heats the die (Fig. 9: +5.4 °C on average).
    assert!(all_on.max_temperature().get() > off.max_temperature().get() + 1.0);
    // OracT does no worse than all-on while sustaining peak efficiency.
    assert!(oract.max_temperature().get() <= all_on.max_temperature().get() + 0.1);
    assert!(oract.max_gradient() <= all_on.max_gradient() + 0.1);
    // Naïve's oscillation makes it hotter than both.
    assert!(naive.max_temperature().get() > all_on.max_temperature().get());
    assert!(naive.max_temperature().get() > oract.max_temperature().get());
    // OracV concentrates heat near logic: thermally the worst gater.
    assert!(oracv.max_temperature().get() > oract.max_temperature().get());
    assert!(oracv.max_gradient() > oract.max_gradient());
}

/// Fig. 11: OracT trades noise for temperature; OracV protects noise;
/// the VT policies pull the noise profile back toward all-on.
#[test]
fn noise_policy_ordering_lu_ncb() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, shape_config());
    let noise = |p| {
        engine
            .run(Benchmark::LuNcb, p)
            .unwrap()
            .max_noise_percent()
            .unwrap()
    };
    let all_on = noise(PolicyKind::AllOn);
    let oract = noise(PolicyKind::OracT);
    let oracv = noise(PolicyKind::OracV);
    let oracvt = noise(PolicyKind::OracVT);

    assert!(oract > 1.2 * all_on, "OracT {oract} vs all-on {all_on}");
    assert!(oracv < oract, "OracV {oracv} vs OracT {oract}");
    // OracVT reacts to (or its detector clips) emergencies: its worst
    // window never exceeds OracT's and stays near the emergency
    // threshold + detector overshoot (10 % + 3 % of Vdd).
    assert!(oracvt <= oract + 1e-9, "OracVT {oracvt} vs OracT {oract}");
    assert!(oracvt < 13.5, "OracVT {oracvt}");
}

/// Section 6.3: the practical policies track their oracles closely.
#[test]
fn practical_policies_track_oracles() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, shape_config());
    let oract = engine.run(Benchmark::Barnes, PolicyKind::OracT).unwrap();
    let pract = engine.run(Benchmark::Barnes, PolicyKind::PracT).unwrap();
    // Paper: +0.5 °C and ≈3 % gradient degradation from sensing delay
    // and prediction error. Allow a generous band.
    let dt = pract.max_temperature().get() - oract.max_temperature().get();
    assert!(dt > -0.5 && dt < 3.0, "PracT − OracT = {dt} °C");
    let r2 = pract.predictor_r_squared().unwrap();
    assert!(r2 > 0.9, "R² {r2}");
}

/// Section 6.3: PracVT sustains operation within 1 % of peak conversion
/// efficiency despite its emergency reactions.
#[test]
fn pracvt_efficiency_stays_near_peak() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, shape_config());
    let pract = engine.run(Benchmark::LuNcb, PolicyKind::PracT).unwrap();
    let pracvt = engine.run(Benchmark::LuNcb, PolicyKind::PracVT).unwrap();
    let degradation = pract.mean_efficiency() - pracvt.mean_efficiency();
    assert!(
        degradation < 0.01,
        "η degradation {degradation} exceeds 1 %"
    );
}

/// Table 2: emergencies are rare under OracT.
#[test]
fn emergencies_are_rare() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, shape_config());
    let r = engine.run(Benchmark::LuNcb, PolicyKind::OracT).unwrap();
    let fraction = r.emergency_cycle_fraction().unwrap();
    assert!(fraction < 0.02, "emergency residency {fraction}");
}
