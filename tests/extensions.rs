//! Integration tests for the discussion-section extensions:
//! multiprogramming (Section 7), aging (Section 7), heterogeneous
//! regulator networks (Section 3.1), and better cooling (Section 5).

use floorplan::reference::power8_like;
use simkit::units::{Amps, Seconds};
use thermal::{PackageParams, ThermalConfig};
use thermogater::{AgingModel, EngineConfig, PolicyKind, SimulationEngine};
use vreg::{HeterogeneousBank, RegulatorDesign};
use workload::{Benchmark, TraceGenerator, WorkloadMix, WorkloadSpec};

fn tiny_config() -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(3.0),
        thermal: ThermalConfig::coarse(),
        noise_window_count: 6,
        profiling_decisions: 4,
        ..EngineConfig::standard()
    }
}

#[test]
fn multiprogram_run_lands_between_its_components() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let heavy = engine.run(Benchmark::Cholesky, PolicyKind::OracT).unwrap();
    let light = engine.run(Benchmark::Raytrace, PolicyKind::OracT).unwrap();
    let mix: WorkloadSpec =
        WorkloadMix::alternating(Benchmark::Cholesky, Benchmark::Raytrace, 8).into();
    let mixed = engine.run_spec(&mix, PolicyKind::OracT).unwrap();

    // Active regulator demand of the mix sits between the pure runs.
    assert!(
        mixed.mean_active_count() > light.mean_active_count()
            && mixed.mean_active_count() < heavy.mean_active_count(),
        "mix {} not between {} and {}",
        mixed.mean_active_count(),
        light.mean_active_count(),
        heavy.mean_active_count()
    );
    // So does its temperature.
    assert!(mixed.max_temperature() > light.max_temperature());
    assert!(mixed.max_temperature() < heavy.max_temperature());
    // And gating still sustains near-peak efficiency per domain.
    assert!(mixed.mean_efficiency() > 0.85);
    assert_eq!(mixed.workload(), &mix);
}

#[test]
fn mixed_traces_make_assigned_cores_differ() {
    let chip = power8_like();
    let mix: WorkloadSpec =
        WorkloadMix::alternating(Benchmark::Cholesky, Benchmark::Raytrace, 8).into();
    let trace = TraceGenerator::new(&chip).generate_spec(&mix, Seconds::from_millis(1.0));
    let mean = |name: &str| {
        let block = chip.blocks().iter().find(|b| b.name() == name).unwrap();
        let ch = trace.block_activity(block.id());
        ch.iter().sum::<f64>() / ch.len() as f64
    };
    // core0 runs cholesky (heavy), core1 raytrace (light).
    assert!(
        mean("core0.EXU") > 2.0 * mean("core1.EXU"),
        "core0 {} vs core1 {}",
        mean("core0.EXU"),
        mean("core1.EXU")
    );
}

#[test]
fn aging_assessment_separates_policies() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let model = AgingModel::electromigration();
    let all_on = model.assess(&engine.run(Benchmark::LuNcb, PolicyKind::AllOn).unwrap());
    let oracv = model.assess(&engine.run(Benchmark::LuNcb, PolicyKind::OracV).unwrap());

    // All-on stresses every regulator continuously: imbalance comes from
    // temperature alone.
    assert!(all_on.imbalance() >= 1.0);
    // OracV concentrates both utilisation and heat near logic: its worst
    // regulator ages faster than under all-on relative to the fleet.
    assert!(
        oracv.imbalance() > all_on.imbalance(),
        "OracV {} vs all-on {}",
        oracv.imbalance(),
        all_on.imbalance()
    );
    assert_eq!(all_on.wear_values().len(), chip.vr_sites().len());
    assert!(all_on.relative_mttf() > 0.0);
}

#[test]
fn heterogeneous_bank_covers_a_core_demand() {
    // A mixed network (bucks + LDO trimmers) can serve the same demand
    // band a homogeneous 9-phase bank covers.
    let bank = HeterogeneousBank::new(vec![
        RegulatorDesign::fivr(),
        RegulatorDesign::fivr(),
        RegulatorDesign::fivr(),
        RegulatorDesign::fivr(),
        RegulatorDesign::fivr(),
        RegulatorDesign::fivr(),
        RegulatorDesign::power8_ldo(),
        RegulatorDesign::power8_ldo(),
        RegulatorDesign::power8_ldo(),
    ]);
    assert!(bank.peak_capacity().get() > 13.0);
    for demand in [0.5, 3.0, 7.5, 12.0] {
        let active = bank.required_active(Amps::new(demand));
        let eta = bank.efficiency(Amps::new(demand), &active).unwrap();
        assert!(eta > 0.8, "η {eta} at {demand} A");
    }
}

#[test]
fn better_cooling_cools_every_policy_uniformly() {
    let chip = power8_like();
    let air = SimulationEngine::new(&chip, tiny_config());
    let improved = SimulationEngine::new(
        &chip,
        EngineConfig {
            thermal: ThermalConfig {
                package: PackageParams::improved_cooling(),
                ..ThermalConfig::coarse()
            },
            ..tiny_config()
        },
    );
    let mut deltas = Vec::new();
    for policy in [PolicyKind::AllOn, PolicyKind::OracT] {
        let hot = air.run(Benchmark::Barnes, policy).unwrap();
        let cool = improved.run(Benchmark::Barnes, policy).unwrap();
        let delta = hot.max_temperature().get() - cool.max_temperature().get();
        assert!(delta > 1.0, "{policy}: cooling saved only {delta} °C");
        deltas.push(delta);
    }
    // The package improvement shifts policies almost uniformly (paper
    // Section 5: cooling solutions usually uniformly affect the chip).
    assert!((deltas[0] - deltas[1]).abs() < 1.0, "deltas {deltas:?}");
}
