//! End-to-end integration tests: the full stack (workload → power →
//! regulators → thermal → PDN → governor) on the reference chip.

use floorplan::reference::power8_like;
use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn tiny_config() -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(3.0),
        thermal: ThermalConfig::coarse(),
        noise_window_count: 6,
        profiling_decisions: 4,
        ..EngineConfig::standard()
    }
}

#[test]
fn every_policy_completes_and_is_physical() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    for policy in PolicyKind::ALL {
        let r = engine
            .run(Benchmark::WaterSpatial, policy)
            .unwrap_or_else(|e| panic!("{policy} failed: {e}"));
        let t = r.max_temperature().get();
        assert!(t > 45.0 && t < 110.0, "{policy}: T_max {t}");
        assert!(r.max_gradient() >= 0.0, "{policy}");
        assert!(
            r.mean_efficiency() > 0.5 && r.mean_efficiency() <= 1.0,
            "{policy}: η {}",
            r.mean_efficiency()
        );
        assert_eq!(r.decisions().len(), 3, "{policy}");
        assert_eq!(r.policy(), policy);
        assert_eq!(r.benchmark(), Benchmark::WaterSpatial);
    }
}

#[test]
fn gating_respects_supply_constraints_in_every_decision() {
    // Factor (I) of Section 4: the active set must be able to supply the
    // demand — at least n_on regulators on per domain, and never zero.
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    for policy in [PolicyKind::Naive, PolicyKind::OracT, PolicyKind::PracVT] {
        let r = engine.run(Benchmark::Barnes, policy).unwrap();
        for decision in r.decisions() {
            for domain in chip.domains() {
                let active = decision.gating.active_among(domain.vrs());
                let required = decision.n_on[domain.id().0];
                assert!(
                    active >= required.min(domain.vr_count()),
                    "{policy}: domain {} has {active} active, needs {required}",
                    domain.name()
                );
                assert!(active >= 1, "{policy}: unpowered domain");
            }
        }
    }
}

#[test]
fn efficiency_gating_beats_all_on_and_tracks_demand() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let all_on = engine.run(Benchmark::Volrend, PolicyKind::AllOn).unwrap();
    let gated = engine.run(Benchmark::Volrend, PolicyKind::OracT).unwrap();
    // Gating sustains near-peak conversion efficiency on a light load...
    assert!(gated.mean_efficiency() > all_on.mean_efficiency() + 0.02);
    // ...which means less conversion loss dissipated on-chip.
    assert!(gated.mean_total_vr_loss().get() < all_on.mean_total_vr_loss().get());
    // And the active count reflects the light load.
    assert!(gated.mean_active_count() < 60.0);
}

#[test]
fn off_chip_baseline_is_coolest_and_lossless() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let off = engine.run(Benchmark::Fmm, PolicyKind::OffChip).unwrap();
    let on = engine.run(Benchmark::Fmm, PolicyKind::AllOn).unwrap();
    assert_eq!(off.mean_total_vr_loss().get(), 0.0);
    assert!(off.max_noise_percent().is_none());
    // On-chip conversion loss heats the die.
    assert!(on.max_temperature() > off.max_temperature());
    assert!(on.max_gradient() > off.max_gradient());
}

#[test]
fn noise_is_analyzed_for_gating_policies() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let r = engine.run(Benchmark::Radix, PolicyKind::OracT).unwrap();
    assert_eq!(r.window_noise_percent().len(), 6);
    let max = r.max_noise_percent().expect("noise analyzed");
    assert!(max > 0.0 && max < 60.0, "noise {max}");
    assert!(r.emergency_cycle_fraction().is_some());
    assert!(r.worst_window_trace().is_some());
}

#[test]
fn time_series_are_shape_consistent() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let r = engine.run(Benchmark::OceanCp, PolicyKind::PracT).unwrap();
    let steps = r.total_power().len();
    assert_eq!(r.active_count().len(), steps);
    assert_eq!(r.vr_temperatures().sample_count(), steps);
    assert_eq!(r.vr_temperatures().channel_count(), chip.vr_sites().len());
    // Heat map at T_max uses the configured grid.
    assert_eq!(r.heatmap_at_tmax().len(), 32);
    assert!(r.heatmap_at_tmax().iter().all(|row| row.len() == 32));
    // Total power stays within the chip's physical envelope.
    let max_power = r.total_power().max().unwrap();
    assert!(max_power > 10.0 && max_power < 160.0, "power {max_power}");
}

#[test]
fn engine_types_are_send_and_sync() {
    // Sweeps parallelise by sharing one engine across threads; these
    // bounds are part of the public contract (C-SEND-SYNC).
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimulationEngine<'static>>();
    assert_send_sync::<thermogater::SimulationResult>();
    assert_send_sync::<thermogater::EngineConfig>();
    assert_send_sync::<thermal::ThermalModel>();
    assert_send_sync::<pdn::PdnModel>();
    assert_send_sync::<simkit::Error>();
}

#[test]
fn runs_are_reproducible_bit_for_bit() {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let a = engine.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();
    let b = engine.run(Benchmark::Fft, PolicyKind::OracVT).unwrap();
    assert_eq!(a.max_temperature(), b.max_temperature());
    assert_eq!(a.max_gradient(), b.max_gradient());
    assert_eq!(a.window_noise_percent(), b.window_noise_percent());
    assert_eq!(a.total_power().values(), b.total_power().values());
}
