//! Property-based tests on cross-crate invariants.

use floorplan::reference::power8_like;
use proptest::prelude::*;
use simkit::units::{Amps, Watts};
use simkit::PiecewiseLinear;
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use thermogater::{select_gating, PolicyInputs, PolicyKind};
use vreg::{loss, GatingState, RegulatorBank, RegulatorDesign};

proptest! {
    /// `required_active` is the minimal count that keeps every active
    /// regulator at or below its peak current.
    #[test]
    fn required_active_is_minimal_and_sufficient(demand in 0.0f64..20.0) {
        let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
        let n = bank.required_active(Amps::new(demand));
        prop_assert!((1..=9).contains(&n));
        let peak = bank.design().peak_current().get();
        if demand > 0.0 && n < 9 {
            // Sufficient: the chosen count carries ≤ peak per regulator.
            prop_assert!(demand / n as f64 <= peak + 1e-12);
        }
        if n > 1 {
            // Minimal: one fewer would overload someone.
            prop_assert!(demand / (n as f64 - 1.0) > peak - 1e-12);
        }
    }

    /// Conversion loss is non-negative and strictly decreasing in η.
    #[test]
    fn conversion_loss_monotone_in_eta(
        pout in 0.0f64..200.0,
        eta_lo in 0.05f64..0.90,
        delta in 0.001f64..0.09,
    ) {
        let eta_hi = (eta_lo + delta).min(1.0);
        let lossy = loss::conversion_loss(Watts::new(pout), eta_lo);
        let clean = loss::conversion_loss(Watts::new(pout), eta_hi);
        prop_assert!(lossy.get() >= 0.0);
        prop_assert!(clean.get() >= 0.0);
        if pout > 0.0 {
            prop_assert!(lossy.get() > clean.get());
        }
    }

    /// Bank efficiency under even sharing never exceeds the design peak.
    #[test]
    fn bank_efficiency_bounded_by_peak(demand in 0.0f64..25.0, n_on in 1usize..=9) {
        let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
        let eta = bank.efficiency(Amps::new(demand), n_on).unwrap();
        prop_assert!(eta > 0.0);
        prop_assert!(eta <= bank.design().peak_efficiency() + 1e-12);
    }

    /// Piecewise-linear evaluation never escapes the convex hull of the
    /// breakpoint ordinates.
    #[test]
    fn interpolation_stays_in_hull(
        xs in proptest::collection::vec(0.0f64..100.0, 2..8),
        ys in proptest::collection::vec(-5.0f64..5.0, 8),
        probe in -50.0f64..150.0,
    ) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(xs.len() >= 2);
        let points: Vec<(f64, f64)> = xs.iter().zip(&ys).map(|(&x, &y)| (x, y)).collect();
        let f = PiecewiseLinear::new(points.clone()).unwrap();
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let v = f.eval(probe);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// Gating selection activates exactly the required count per domain
    /// (absent emergencies), whatever the ranking inputs look like.
    #[test]
    fn selection_activates_exactly_n_on(
        seed_temps in proptest::collection::vec(20.0f64..120.0, 96),
        n_on_core in 1usize..=9,
        n_on_l3 in 1usize..=3,
    ) {
        let chip = power8_like();
        let n_on: Vec<usize> = chip
            .domains()
            .iter()
            .map(|d| if d.vr_count() == 9 { n_on_core } else { n_on_l3 })
            .collect();
        let noise = vec![0.0; 96];
        let emergency = vec![false; chip.domains().len()];
        let inputs = PolicyInputs {
            chip: &chip,
            n_on: &n_on,
            vr_temp_rank: &seed_temps,
            vr_noise_score: &noise,
            emergency: &emergency,
        };
        for kind in [PolicyKind::Naive, PolicyKind::OracT, PolicyKind::PracVT] {
            let state = select_gating(kind, &inputs).unwrap();
            for domain in chip.domains() {
                prop_assert_eq!(
                    state.active_among(domain.vrs()),
                    n_on[domain.id().0].min(domain.vr_count())
                );
            }
        }
    }

    /// Power maps conserve energy: total equals the sum of injections.
    #[test]
    fn power_map_conserves_energy(
        block_powers in proptest::collection::vec(0.0f64..10.0, 52),
    ) {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig::coarse());
        let mut pm = PowerMap::new(&model);
        let mut expected = 0.0;
        for (block, &p) in chip.blocks().iter().zip(&block_powers) {
            pm.add_block(block.id(), Watts::new(p)).unwrap();
            expected += p;
        }
        prop_assert!((pm.total().get() - expected).abs() < 1e-9);
    }

    /// Gating diff is an involution-ish: applying the reported toggles to
    /// the old state reproduces the new state.
    #[test]
    fn gating_diff_reconstructs_state(
        bits_a in proptest::collection::vec(any::<bool>(), 96),
        bits_b in proptest::collection::vec(any::<bool>(), 96),
    ) {
        let mut a = GatingState::all_off(96);
        let mut b = GatingState::all_off(96);
        for (i, (&x, &y)) in bits_a.iter().zip(&bits_b).enumerate() {
            a.set(floorplan::VrId(i), x).unwrap();
            b.set(floorplan::VrId(i), y).unwrap();
        }
        let changes = b.diff(&a).unwrap();
        let mut rebuilt = a.clone();
        for (id, on) in changes {
            rebuilt.set(id, on).unwrap();
        }
        prop_assert_eq!(rebuilt, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The PDN is a linear resistive network. Its per-domain *maximum*
    /// drop is therefore homogeneous (scaling the loads scales the drop)
    /// and subadditive (the max of a sum cannot exceed the sum of
    /// maxima — superposition holds per cell, and max is subadditive).
    #[test]
    fn pdn_ir_drop_is_linear_in_the_loads(
        pa in proptest::collection::vec(0.0f64..4.0, 52),
        pb in proptest::collection::vec(0.0f64..4.0, 52),
        scale in 0.25f64..4.0,
    ) {
        use pdn::{PdnConfig, PdnModel};
        let chip = power8_like();
        let model = PdnModel::new(&chip, PdnConfig::reference());
        let gating = GatingState::all_on(chip.vr_sites().len());
        let to_watts = |v: &[f64]| v.iter().map(|&p| Watts::new(p)).collect::<Vec<_>>();
        let scaled: Vec<f64> = pa.iter().map(|&p| p * scale).collect();
        let sum: Vec<f64> = pa.iter().zip(&pb).map(|(a, b)| a + b).collect();
        let ra = model.ir_drop(&gating, &to_watts(&pa)).unwrap();
        let rb = model.ir_drop(&gating, &to_watts(&pb)).unwrap();
        let rscaled = model.ir_drop(&gating, &to_watts(&scaled)).unwrap();
        let rsum = model.ir_drop(&gating, &to_watts(&sum)).unwrap();
        for d in 0..chip.domains().len() {
            let id = floorplan::DomainId(d);
            // Homogeneity: the worst cell stays the worst cell.
            let lhs = rscaled.domain_volts(id);
            let rhs = ra.domain_volts(id) * scale;
            prop_assert!(
                (lhs - rhs).abs() < 1e-6 * scale.max(1.0),
                "homogeneity, domain {d}: {lhs} vs {rhs}"
            );
            // Subadditivity of the max.
            prop_assert!(
                rsum.domain_volts(id)
                    <= ra.domain_volts(id) + rb.domain_volts(id) + 1e-9,
                "subadditivity, domain {d}"
            );
        }
    }

    /// Steady-state temperature responds monotonically to power: more
    /// heat in one block never cools the chip's hottest point.
    #[test]
    fn steady_state_monotone_in_power(p1 in 1.0f64..10.0, extra in 0.5f64..10.0) {
        let chip = power8_like();
        let model = ThermalModel::new(&chip, ThermalConfig { nx: 16, ny: 16, ..ThermalConfig::coarse() });
        let block = chip.blocks()[0].id();
        let mut low = PowerMap::new(&model);
        low.add_block(block, Watts::new(p1)).unwrap();
        let mut high = PowerMap::new(&model);
        high.add_block(block, Watts::new(p1 + extra)).unwrap();
        let t_low = model.steady_state(&low).unwrap().max_silicon();
        let t_high = model.steady_state(&high).unwrap().max_silicon();
        prop_assert!(t_high > t_low);
    }
}
