//! Property-based tests on cross-crate invariants, on `simkit::check`.
//!
//! Each test keeps its original fixed base seed (`0xA001`…), so failures
//! reproduce bit-for-bit offline — but instead of dumping a raw
//! 64-iteration assertion, a failure now *shrinks* to a minimal
//! counterexample and prints the `.case` block to pin it under
//! `tests/corpus/` (which is replayed first on every run; set
//! `SIMKIT_CHECK_SAVE=1` to write it automatically).

use floorplan::reference::power8_like;
use simkit::check::{self, CheckConfig, Checker, TestResult};
use simkit::units::{Amps, Watts};
use simkit::PiecewiseLinear;
use std::path::PathBuf;
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use thermogater::{select_gating, PolicyInputs, PolicyKind};
use vreg::{loss, GatingState, RegulatorBank, RegulatorDesign};

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus"))
}

fn checker(seed: u64, cases: usize) -> Checker {
    Checker::new(CheckConfig {
        seed,
        cases,
        max_shrink_evals: 256,
        corpus: Some(corpus_dir()),
    })
}

/// `required_active` is the minimal count that keeps every active
/// regulator at or below its peak current.
#[test]
fn required_active_is_minimal_and_sufficient() {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let peak = bank.design().peak_current().get();
    checker(0xA001, 64).assert(
        "vreg.required_active",
        &check::f64_in(0.0, 20.0),
        |&demand| {
            let n = bank.required_active(Amps::new(demand));
            check::ensure((1..=9).contains(&n), || format!("n = {n} outside 1..=9"))?;
            if demand > 0.0 && n < 9 {
                // Sufficient: the chosen count carries ≤ peak per regulator.
                check::ensure(demand / n as f64 <= peak + 1e-12, || {
                    format!("{n} regulators carry {} A each", demand / n as f64)
                })?;
            }
            if n > 1 {
                // Minimal: one fewer would overload someone.
                check::ensure(demand / (n as f64 - 1.0) > peak - 1e-12, || {
                    format!("{} regulators would already suffice", n - 1)
                })?;
            }
            Ok(())
        },
    );
}

/// Conversion loss is non-negative and strictly decreasing in η.
#[test]
fn conversion_loss_monotone_in_eta() {
    let gen = (
        check::f64_in(0.0, 200.0),
        check::f64_in(0.05, 0.90),
        check::f64_in(0.001, 0.09),
    );
    checker(0xA002, 64).assert(
        "vreg.loss_monotone",
        &gen,
        |&(pout, eta_lo, delta)| -> TestResult {
            let eta_hi = (eta_lo + delta).min(1.0);
            let lossy = loss::conversion_loss(Watts::new(pout), eta_lo);
            let clean = loss::conversion_loss(Watts::new(pout), eta_hi);
            check::ensure(lossy.get() >= 0.0 && clean.get() >= 0.0, || {
                "negative conversion loss".to_string()
            })?;
            if pout > 0.0 {
                check::ensure(lossy.get() > clean.get(), || {
                    format!("loss not decreasing: η {eta_lo} → {lossy:?}, η {eta_hi} → {clean:?}")
                })?;
            }
            Ok(())
        },
    );
}

/// Bank efficiency under even sharing never exceeds the design peak.
#[test]
fn bank_efficiency_bounded_by_peak() {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let gen = (check::f64_in(0.0, 25.0), check::usize_in(1, 9));
    checker(0xA003, 64).assert("vreg.eta_bounded", &gen, |&(demand, n_on)| {
        let eta = bank
            .efficiency(Amps::new(demand), n_on)
            .map_err(|e| e.to_string())?;
        check::ensure(eta > 0.0, || format!("η = {eta} not positive"))?;
        check::ensure(eta <= bank.design().peak_efficiency() + 1e-12, || {
            format!("η = {eta} above peak {}", bank.design().peak_efficiency())
        })
    });
}

/// Piecewise-linear evaluation never escapes the convex hull of the
/// breakpoint ordinates.
#[test]
fn interpolation_stays_in_hull() {
    let gen = (
        check::vec_of(check::f64_in(0.0, 100.0), 2, 8),
        check::vec_of(check::f64_in(-5.0, 5.0), 2, 8),
        check::f64_in(-50.0, 150.0),
    );
    checker(0xA004, 64).assert("simkit.interp_hull", &gen, |(xs, ys, probe)| {
        let mut xs = xs[..xs.len().min(ys.len())].to_vec();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        if xs.len() < 2 {
            return Ok(()); // vacuous after dedup
        }
        let points: Vec<(f64, f64)> = xs.iter().zip(ys).map(|(&x, &y)| (x, y)).collect();
        let f = PiecewiseLinear::new(points.clone()).map_err(|e| e.to_string())?;
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let v = f.eval(*probe);
        check::ensure(v >= lo - 1e-9 && v <= hi + 1e-9, || {
            format!("eval({probe}) = {v} escaped hull [{lo}, {hi}]")
        })
    });
}

/// Gating selection activates exactly the required count per domain
/// (absent emergencies), whatever the ranking inputs look like.
#[test]
fn selection_activates_exactly_n_on() {
    let chip = power8_like();
    let n_vrs = chip.vr_sites().len();
    let gen = (
        check::vec_of(check::f64_in(20.0, 120.0), n_vrs, n_vrs),
        check::usize_in(1, 9),
        check::usize_in(1, 3),
    );
    checker(0xA005, 24).assert("policy.active_set", &gen, |(temps, n_on_core, n_on_l3)| {
        let n_on: Vec<usize> = chip
            .domains()
            .iter()
            .map(|d| {
                if d.vr_count() == 9 {
                    *n_on_core
                } else {
                    *n_on_l3
                }
            })
            .collect();
        let noise = vec![0.0; n_vrs];
        let emergency = vec![false; chip.domains().len()];
        let inputs = PolicyInputs {
            chip: &chip,
            n_on: &n_on,
            vr_temp_rank: temps,
            vr_noise_score: &noise,
            emergency: &emergency,
        };
        for kind in [PolicyKind::Naive, PolicyKind::OracT, PolicyKind::PracVT] {
            let state = select_gating(kind, &inputs).map_err(|e| e.to_string())?;
            for domain in chip.domains() {
                let want = n_on[domain.id().0].min(domain.vr_count());
                let got = state.active_among(domain.vrs());
                check::ensure(got == want, || {
                    format!(
                        "{kind:?}: domain D{} has {got} on, wanted {want}",
                        domain.id().0
                    )
                })?;
            }
        }
        Ok(())
    });
}

/// Power maps conserve energy: total equals the sum of injections.
#[test]
fn power_map_conserves_energy() {
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    let n_blocks = chip.blocks().len();
    let gen = check::vec_of(check::f64_in(0.0, 10.0), n_blocks, n_blocks);
    checker(0xA006, 16).assert("thermal.power_map_total", &gen, |block_powers| {
        let mut pm = PowerMap::new(&model);
        let mut expected = 0.0;
        for (block, &p) in chip.blocks().iter().zip(block_powers) {
            pm.add_block(block.id(), Watts::new(p))
                .map_err(|e| e.to_string())?;
            expected += p;
        }
        check::ensure((pm.total().get() - expected).abs() < 1e-9, || {
            format!("map total {} != injected {expected}", pm.total().get())
        })
    });
}

/// Gating diff is an involution-ish: applying the reported toggles to
/// the old state reproduces the new state.
#[test]
fn gating_diff_reconstructs_state() {
    let gen = (
        check::vec_of(check::bool_any(), 96, 96),
        check::vec_of(check::bool_any(), 96, 96),
    );
    checker(0xA007, 32).assert("vreg.gating_diff", &gen, |(bits_a, bits_b)| {
        let mut a = GatingState::all_off(96);
        let mut b = GatingState::all_off(96);
        for i in 0..96 {
            a.set(floorplan::VrId(i), bits_a[i])
                .map_err(|e| e.to_string())?;
            b.set(floorplan::VrId(i), bits_b[i])
                .map_err(|e| e.to_string())?;
        }
        let changes = b.diff(&a).map_err(|e| e.to_string())?;
        let mut rebuilt = a.clone();
        for (id, on) in changes {
            rebuilt.set(id, on).map_err(|e| e.to_string())?;
        }
        check::ensure(rebuilt == b, || {
            "diff did not reconstruct the state".to_string()
        })
    });
}

/// The PDN is a linear resistive network. Its per-domain *maximum* drop
/// is therefore homogeneous (scaling the loads scales the drop) and
/// subadditive (the max of a sum cannot exceed the sum of maxima —
/// superposition holds per cell, and max is subadditive).
#[test]
fn pdn_ir_drop_is_linear_in_the_loads() {
    use pdn::{PdnConfig, PdnModel};
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let gating = GatingState::all_on(chip.vr_sites().len());
    let n_blocks = chip.blocks().len();
    let to_watts = |v: &[f64]| v.iter().map(|&p| Watts::new(p)).collect::<Vec<_>>();
    let gen = (
        check::vec_of(check::f64_in(0.0, 4.0), n_blocks, n_blocks),
        check::vec_of(check::f64_in(0.0, 4.0), n_blocks, n_blocks),
        check::f64_in(0.25, 4.0),
    );
    checker(0xA008, 6).assert("pdn.linearity_full", &gen, |(pa, pb, scale)| {
        let scaled: Vec<f64> = pa.iter().map(|&p| p * scale).collect();
        let sum: Vec<f64> = pa.iter().zip(pb).map(|(a, b)| a + b).collect();
        let ra = model
            .ir_drop(&gating, &to_watts(pa))
            .map_err(|e| e.to_string())?;
        let rb = model
            .ir_drop(&gating, &to_watts(pb))
            .map_err(|e| e.to_string())?;
        let rscaled = model
            .ir_drop(&gating, &to_watts(&scaled))
            .map_err(|e| e.to_string())?;
        let rsum = model
            .ir_drop(&gating, &to_watts(&sum))
            .map_err(|e| e.to_string())?;
        for d in 0..chip.domains().len() {
            let id = floorplan::DomainId(d);
            // Homogeneity: the worst cell stays the worst cell.
            let lhs = rscaled.domain_volts(id);
            let rhs = ra.domain_volts(id) * scale;
            check::ensure((lhs - rhs).abs() < 1e-6 * scale.max(1.0), || {
                format!("homogeneity, domain {d}: {lhs} vs {rhs}")
            })?;
            // Subadditivity of the max.
            check::ensure(
                rsum.domain_volts(id) <= ra.domain_volts(id) + rb.domain_volts(id) + 1e-9,
                || format!("subadditivity, domain {d}"),
            )?;
        }
        Ok(())
    });
}

/// Closed-loop gating is a pure function of (config, seed): for any
/// generated workload and temperature setpoint, two `IntegralT` runs on
/// the same engine produce identical decision sequences — the integral
/// controller holds no state the engine does not reset per run.
#[test]
fn integral_gating_is_deterministic_per_config() {
    use simkit::units::Seconds;
    use thermogater::{EngineConfig, GovernorConfig, SimulationEngine};
    use workload::Benchmark;
    let chip = power8_like();
    let gen = (check::usize_in(0, 13), check::f64_in(40.0, 110.0));
    checker(0xA00B, 3).assert("core.governor_determinism", &gen, |&(bench, setpoint)| {
        let config = EngineConfig {
            duration: Seconds::from_millis(2.0),
            noise_window_count: 2,
            thermal: ThermalConfig::coarse(),
            governor: GovernorConfig {
                temp_setpoint_c: setpoint,
                ..GovernorConfig::standard()
            },
            ..EngineConfig::standard()
        };
        let engine = SimulationEngine::new(&chip, config);
        let benchmark = Benchmark::ALL[bench];
        let a = engine
            .run(benchmark, PolicyKind::IntegralT)
            .map_err(|e| e.to_string())?;
        let b = engine
            .run(benchmark, PolicyKind::IntegralT)
            .map_err(|e| e.to_string())?;
        check::ensure(a.decisions().len() == b.decisions().len(), || {
            "decision counts differ across runs".to_string()
        })?;
        for (k, (da, db)) in a.decisions().iter().zip(b.decisions()).enumerate() {
            check::ensure(da.gating == db.gating, || {
                format!("decision {k}: gating differs across identical runs")
            })?;
            check::ensure(da.n_on == db.n_on, || {
                format!("decision {k}: n_on differs across identical runs")
            })?;
        }
        check::ensure(a.max_temperature() == b.max_temperature(), || {
            "T_max differs across identical runs".to_string()
        })
    });
}

/// Steady-state temperature responds monotonically to power: more heat
/// in one block never cools the chip's hottest point.
#[test]
fn steady_state_monotone_in_power() {
    let chip = power8_like();
    let model = ThermalModel::new(
        &chip,
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::coarse()
        },
    );
    let block = chip.blocks()[0].id();
    let gen = (check::f64_in(1.0, 10.0), check::f64_in(0.5, 10.0));
    checker(0xA009, 4).assert("thermal.monotone", &gen, |&(p1, extra)| {
        let mut low = PowerMap::new(&model);
        low.add_block(block, Watts::new(p1))
            .map_err(|e| e.to_string())?;
        let mut high = PowerMap::new(&model);
        high.add_block(block, Watts::new(p1 + extra))
            .map_err(|e| e.to_string())?;
        let t_low = model
            .steady_state(&low)
            .map_err(|e| e.to_string())?
            .max_silicon();
        let t_high = model
            .steady_state(&high)
            .map_err(|e| e.to_string())?
            .max_silicon();
        check::ensure(t_high > t_low, || {
            format!("+{extra} W cooled the hot spot: {t_low} → {t_high}")
        })
    });
}
