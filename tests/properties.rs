//! Property-based tests on cross-crate invariants.
//!
//! Each test draws a few dozen random cases from [`DeterministicRng`]
//! (fixed seeds, so failures reproduce bit-for-bit offline) and checks an
//! invariant over all of them — the same methodology as a proptest suite,
//! without the external dependency.

use floorplan::reference::power8_like;
use simkit::units::{Amps, Watts};
use simkit::{DeterministicRng, PiecewiseLinear};
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use thermogater::{select_gating, PolicyInputs, PolicyKind};
use vreg::{loss, GatingState, RegulatorBank, RegulatorDesign};

fn vec_in(rng: &mut DeterministicRng, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform_range(lo, hi)).collect()
}

/// `required_active` is the minimal count that keeps every active
/// regulator at or below its peak current.
#[test]
fn required_active_is_minimal_and_sufficient() {
    let mut rng = DeterministicRng::new(0xA001);
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let peak = bank.design().peak_current().get();
    for _ in 0..64 {
        let demand = rng.uniform_range(0.0, 20.0);
        let n = bank.required_active(Amps::new(demand));
        assert!((1..=9).contains(&n));
        if demand > 0.0 && n < 9 {
            // Sufficient: the chosen count carries ≤ peak per regulator.
            assert!(demand / n as f64 <= peak + 1e-12);
        }
        if n > 1 {
            // Minimal: one fewer would overload someone.
            assert!(demand / (n as f64 - 1.0) > peak - 1e-12);
        }
    }
}

/// Conversion loss is non-negative and strictly decreasing in η.
#[test]
fn conversion_loss_monotone_in_eta() {
    let mut rng = DeterministicRng::new(0xA002);
    for _ in 0..64 {
        let pout = rng.uniform_range(0.0, 200.0);
        let eta_lo = rng.uniform_range(0.05, 0.90);
        let eta_hi = (eta_lo + rng.uniform_range(0.001, 0.09)).min(1.0);
        let lossy = loss::conversion_loss(Watts::new(pout), eta_lo);
        let clean = loss::conversion_loss(Watts::new(pout), eta_hi);
        assert!(lossy.get() >= 0.0);
        assert!(clean.get() >= 0.0);
        if pout > 0.0 {
            assert!(lossy.get() > clean.get());
        }
    }
}

/// Bank efficiency under even sharing never exceeds the design peak.
#[test]
fn bank_efficiency_bounded_by_peak() {
    let mut rng = DeterministicRng::new(0xA003);
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    for _ in 0..64 {
        let demand = rng.uniform_range(0.0, 25.0);
        let n_on = 1 + rng.uniform_usize(9);
        let eta = bank.efficiency(Amps::new(demand), n_on).unwrap();
        assert!(eta > 0.0);
        assert!(eta <= bank.design().peak_efficiency() + 1e-12);
    }
}

/// Piecewise-linear evaluation never escapes the convex hull of the
/// breakpoint ordinates.
#[test]
fn interpolation_stays_in_hull() {
    let mut rng = DeterministicRng::new(0xA004);
    for _ in 0..64 {
        let n = 2 + rng.uniform_usize(6);
        let mut xs = vec_in(&mut rng, 0.0, 100.0, n);
        let ys = vec_in(&mut rng, -5.0, 5.0, n);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        if xs.len() < 2 {
            continue;
        }
        let probe = rng.uniform_range(-50.0, 150.0);
        let points: Vec<(f64, f64)> = xs.iter().zip(&ys).map(|(&x, &y)| (x, y)).collect();
        let f = PiecewiseLinear::new(points.clone()).unwrap();
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let v = f.eval(probe);
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }
}

/// Gating selection activates exactly the required count per domain
/// (absent emergencies), whatever the ranking inputs look like.
#[test]
fn selection_activates_exactly_n_on() {
    let mut rng = DeterministicRng::new(0xA005);
    let chip = power8_like();
    for _ in 0..24 {
        let seed_temps = vec_in(&mut rng, 20.0, 120.0, 96);
        let n_on_core = 1 + rng.uniform_usize(9);
        let n_on_l3 = 1 + rng.uniform_usize(3);
        let n_on: Vec<usize> = chip
            .domains()
            .iter()
            .map(|d| {
                if d.vr_count() == 9 {
                    n_on_core
                } else {
                    n_on_l3
                }
            })
            .collect();
        let noise = vec![0.0; 96];
        let emergency = vec![false; chip.domains().len()];
        let inputs = PolicyInputs {
            chip: &chip,
            n_on: &n_on,
            vr_temp_rank: &seed_temps,
            vr_noise_score: &noise,
            emergency: &emergency,
        };
        for kind in [PolicyKind::Naive, PolicyKind::OracT, PolicyKind::PracVT] {
            let state = select_gating(kind, &inputs).unwrap();
            for domain in chip.domains() {
                assert_eq!(
                    state.active_among(domain.vrs()),
                    n_on[domain.id().0].min(domain.vr_count())
                );
            }
        }
    }
}

/// Power maps conserve energy: total equals the sum of injections.
#[test]
fn power_map_conserves_energy() {
    let mut rng = DeterministicRng::new(0xA006);
    let chip = power8_like();
    let model = ThermalModel::new(&chip, ThermalConfig::coarse());
    for _ in 0..16 {
        let block_powers = vec_in(&mut rng, 0.0, 10.0, 52);
        let mut pm = PowerMap::new(&model);
        let mut expected = 0.0;
        for (block, &p) in chip.blocks().iter().zip(&block_powers) {
            pm.add_block(block.id(), Watts::new(p)).unwrap();
            expected += p;
        }
        assert!((pm.total().get() - expected).abs() < 1e-9);
    }
}

/// Gating diff is an involution-ish: applying the reported toggles to
/// the old state reproduces the new state.
#[test]
fn gating_diff_reconstructs_state() {
    let mut rng = DeterministicRng::new(0xA007);
    for _ in 0..32 {
        let mut a = GatingState::all_off(96);
        let mut b = GatingState::all_off(96);
        for i in 0..96 {
            a.set(floorplan::VrId(i), rng.bernoulli(0.5)).unwrap();
            b.set(floorplan::VrId(i), rng.bernoulli(0.5)).unwrap();
        }
        let changes = b.diff(&a).unwrap();
        let mut rebuilt = a.clone();
        for (id, on) in changes {
            rebuilt.set(id, on).unwrap();
        }
        assert_eq!(rebuilt, b);
    }
}

/// The PDN is a linear resistive network. Its per-domain *maximum* drop
/// is therefore homogeneous (scaling the loads scales the drop) and
/// subadditive (the max of a sum cannot exceed the sum of maxima —
/// superposition holds per cell, and max is subadditive).
#[test]
fn pdn_ir_drop_is_linear_in_the_loads() {
    use pdn::{PdnConfig, PdnModel};
    let mut rng = DeterministicRng::new(0xA008);
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let gating = GatingState::all_on(chip.vr_sites().len());
    let to_watts = |v: &[f64]| v.iter().map(|&p| Watts::new(p)).collect::<Vec<_>>();
    for _ in 0..6 {
        let pa = vec_in(&mut rng, 0.0, 4.0, 52);
        let pb = vec_in(&mut rng, 0.0, 4.0, 52);
        let scale = rng.uniform_range(0.25, 4.0);
        let scaled: Vec<f64> = pa.iter().map(|&p| p * scale).collect();
        let sum: Vec<f64> = pa.iter().zip(&pb).map(|(a, b)| a + b).collect();
        let ra = model.ir_drop(&gating, &to_watts(&pa)).unwrap();
        let rb = model.ir_drop(&gating, &to_watts(&pb)).unwrap();
        let rscaled = model.ir_drop(&gating, &to_watts(&scaled)).unwrap();
        let rsum = model.ir_drop(&gating, &to_watts(&sum)).unwrap();
        for d in 0..chip.domains().len() {
            let id = floorplan::DomainId(d);
            // Homogeneity: the worst cell stays the worst cell.
            let lhs = rscaled.domain_volts(id);
            let rhs = ra.domain_volts(id) * scale;
            assert!(
                (lhs - rhs).abs() < 1e-6 * scale.max(1.0),
                "homogeneity, domain {d}: {lhs} vs {rhs}"
            );
            // Subadditivity of the max.
            assert!(
                rsum.domain_volts(id) <= ra.domain_volts(id) + rb.domain_volts(id) + 1e-9,
                "subadditivity, domain {d}"
            );
        }
    }
}

/// Steady-state temperature responds monotonically to power: more heat
/// in one block never cools the chip's hottest point.
#[test]
fn steady_state_monotone_in_power() {
    let mut rng = DeterministicRng::new(0xA009);
    let chip = power8_like();
    let model = ThermalModel::new(
        &chip,
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::coarse()
        },
    );
    let block = chip.blocks()[0].id();
    for _ in 0..4 {
        let p1 = rng.uniform_range(1.0, 10.0);
        let extra = rng.uniform_range(0.5, 10.0);
        let mut low = PowerMap::new(&model);
        low.add_block(block, Watts::new(p1)).unwrap();
        let mut high = PowerMap::new(&model);
        high.add_block(block, Watts::new(p1 + extra)).unwrap();
        let t_low = model.steady_state(&low).unwrap().max_silicon();
        let t_high = model.steady_state(&high).unwrap().max_silicon();
        assert!(t_high > t_low);
    }
}
