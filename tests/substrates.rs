//! Cross-crate consistency of the substrates: floorplan ↔ power ↔
//! thermal ↔ PDN ↔ regulators, without the governor in the loop.

use floorplan::reference::power8_like;
use pdn::{PdnConfig, PdnModel};
use power::{PowerModel, TechnologyParams};
use simkit::units::{Amps, Celsius, Watts};
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use vreg::{GatingState, RegulatorBank, RegulatorDesign};
use workload::{Benchmark, TraceGenerator};

#[test]
fn power_model_covers_every_floorplan_block() {
    let chip = power8_like();
    let model = PowerModel::calibrated(&chip, TechnologyParams::table1());
    let total: Watts = chip
        .blocks()
        .iter()
        .map(|b| model.block_power(b.id(), 1.0, Celsius::new(80.0)))
        .sum();
    assert!((total.get() - 150.0).abs() < 1e-6);
}

#[test]
fn domain_demand_fits_bank_capability() {
    // The per-core regulator bank must be able to carry the core's peak
    // demand — the sizing invariant the whole evaluation relies on.
    let chip = power8_like();
    let model = PowerModel::calibrated(&chip, TechnologyParams::table1());
    let acts = vec![1.0; chip.blocks().len()];
    let temps = vec![Celsius::new(85.0); chip.blocks().len()];
    for domain in chip.domains() {
        let bank = RegulatorBank::new(RegulatorDesign::fivr(), domain.vr_count());
        let demand = model.domain_current(&chip, domain.id(), &acts, &temps);
        assert!(
            demand.get() <= bank.max_current().get(),
            "domain {} demand {demand} exceeds bank {}",
            domain.name(),
            bank.max_current()
        );
    }
}

#[test]
fn workload_power_thermal_pipeline_is_stable() {
    // Trace → power → steady-state temperature, with leakage feedback:
    // the loop converges and lands in a plausible server-chip band.
    let chip = power8_like();
    let power = PowerModel::calibrated(&chip, TechnologyParams::table1());
    let thermal = ThermalModel::new(&chip, ThermalConfig::coarse());
    let trace = TraceGenerator::new(&chip)
        .generate(Benchmark::Barnes, simkit::units::Seconds::from_millis(1.0));
    let mean_acts: Vec<f64> = (0..chip.blocks().len())
        .map(|b| {
            let ch = trace.activity().channel(b);
            ch.iter().sum::<f64>() / ch.len() as f64
        })
        .collect();

    let (state, feedback) = thermal
        .steady_state_with_feedback(60, 0.05, |state| {
            let mut pm = PowerMap::new(&thermal);
            for block in chip.blocks() {
                let t = state.block_temperature(&thermal, block.id());
                pm.add_block(
                    block.id(),
                    power.block_power(block.id(), mean_acts[block.id().0], t),
                )?;
            }
            Ok(pm)
        })
        .unwrap();
    let iterations = feedback.iterations;
    assert!(iterations >= 2, "feedback loop too eager: {iterations}");
    assert!(feedback.cg.solves > 0, "feedback ran no CG solves");
    let t = state.max_silicon().get();
    assert!(t > 50.0 && t < 100.0, "steady T_max {t}");
    // Logic regions run hotter than the L3 region.
    let exu = chip
        .blocks()
        .iter()
        .find(|b| b.name() == "core0.EXU")
        .unwrap();
    let l3 = chip
        .blocks()
        .iter()
        .find(|b| b.name() == "l3bank0.L3")
        .unwrap();
    assert!(
        state.block_temperature(&thermal, exu.id()) > state.block_temperature(&thermal, l3.id())
    );
}

#[test]
fn pdn_and_floorplan_agree_on_counts() {
    let chip = power8_like();
    let pdn = PdnModel::new(&chip, PdnConfig::reference());
    let powers = vec![Watts::new(1.0); chip.blocks().len()];
    let all_on = GatingState::all_on(chip.vr_sites().len());
    let report = pdn.ir_drop(&all_on, &powers).unwrap();
    assert_eq!(report.domain_count(), chip.domains().len());
    for domain in chip.domains() {
        let scores = pdn.vr_load_proximity(domain.id(), &powers);
        assert_eq!(scores.len(), domain.vr_count());
    }
}

#[test]
fn conversion_loss_heats_the_thermal_model_where_the_regulator_sits() {
    // The cross-crate contract: vreg loss → thermal PowerMap → local
    // temperature rise at the regulator's site.
    let chip = power8_like();
    let thermal = ThermalModel::new(&chip, ThermalConfig::coarse());
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let loss = bank
        .per_regulator_loss(Amps::new(12.0), 8, simkit::units::Volts::new(1.03))
        .unwrap();
    assert!(loss.get() > 0.1, "loss {loss}");

    let vr = chip.vr_sites()[0].id();
    let mut pm = PowerMap::new(&thermal);
    // 8 active regulators of core0, each dissipating `loss`.
    for &v in chip.domains()[0].vrs().iter().take(8) {
        pm.add_vr(v, loss).unwrap();
    }
    let state = thermal.steady_state(&pm).unwrap();
    let t_local = state.vr_temperature(&thermal, vr, loss);
    let ambient = state.ambient();
    assert!(
        t_local.get() > ambient.get() + 0.5,
        "regulator loss did not heat its site: {t_local}"
    );
    // A far-away regulator stays near ambient.
    let far = *chip.domains()[7].vrs().last().unwrap();
    let t_far = state.vr_temperature(&thermal, far, Watts::ZERO);
    assert!(t_local.get() > t_far.get());
}

#[test]
fn trace_statistics_separate_the_suite() {
    // The synthetic suite must spread across the utilisation axis —
    // otherwise Figs. 6/7/9 would degenerate.
    let chip = power8_like();
    let gen = TraceGenerator::new(&chip);
    let mean_util = |b| {
        let t = gen.generate(b, simkit::units::Seconds::from_millis(1.0));
        t.activity().total().mean().unwrap() / chip.blocks().len() as f64
    };
    let mut utils: Vec<(Benchmark, f64)> =
        Benchmark::ALL.iter().map(|&b| (b, mean_util(b))).collect();
    utils.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let (lightest, lo) = utils[0];
    let (heaviest, hi) = utils[utils.len() - 1];
    assert_eq!(lightest, Benchmark::Raytrace);
    assert_eq!(heaviest, Benchmark::Cholesky);
    assert!(hi > 2.0 * lo, "spread too small: {lo}..{hi}");
}
