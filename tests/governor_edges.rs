//! Edge-case tests for the closed-loop governors at controller
//! saturation: setpoints no plant trajectory can reach, in either
//! direction. The integrator must clamp (anti-windup), the actuation
//! must pin at the corresponding extreme, and every metric must stay
//! finite — no NaN, no oscillation between extremes.

use floorplan::reference::power8_like;
use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::{EngineConfig, GovernorConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn edge_config(governor: GovernorConfig) -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(3.0),
        noise_window_count: 4,
        profiling_decisions: 4,
        thermal: ThermalConfig::coarse(),
        governor,
        ..EngineConfig::standard()
    }
}

fn assert_finite_metrics(r: &thermogater::SimulationResult, label: &str) {
    assert!(
        r.max_temperature().get().is_finite(),
        "{label}: T_max not finite"
    );
    assert!(r.max_gradient().is_finite(), "{label}: gradient not finite");
    assert!(
        r.mean_efficiency().is_finite() && r.mean_efficiency() > 0.0,
        "{label}: efficiency not finite"
    );
    if let Some(noise) = r.max_noise_percent() {
        assert!(noise.is_finite(), "{label}: noise not finite");
    }
}

/// An unreachably low temperature setpoint (0 °C on a chip that idles
/// near 45 °C) drives the integrator to its lower clamp: the governor
/// sheds to the efficiency floor — the same per-domain active counts a
/// Naïve run settles on — and stays there without NaN or oscillation.
#[test]
fn unreachably_low_temp_setpoint_clamps_to_the_floor() {
    let chip = power8_like();
    let governor = GovernorConfig {
        temp_setpoint_c: 0.0,
        ..GovernorConfig::standard()
    };
    let engine = SimulationEngine::new(&chip, edge_config(governor));
    let governed = engine.run(Benchmark::LuNcb, PolicyKind::IntegralT).unwrap();
    let naive = engine.run(Benchmark::LuNcb, PolicyKind::Naive).unwrap();
    assert_finite_metrics(&governed, "IntegralT@0C");
    assert_eq!(governed.decisions().len(), naive.decisions().len());
    for (k, (dg, dn)) in governed
        .decisions()
        .iter()
        .zip(naive.decisions())
        .enumerate()
    {
        // u clamps at 0 → the actuation floor is exactly the efficiency
        // n_on the Naïve policy uses, domain by domain.
        for domain in chip.domains() {
            assert_eq!(
                dg.gating.active_among(domain.vrs()),
                dn.gating.active_among(domain.vrs()),
                "decision {k}, domain D{}: governed floor differs from Naïve",
                domain.id().0
            );
        }
    }
}

/// An unreachably high setpoint (1000 °C) saturates the controller the
/// other way: every domain converges to all-on — immediately, given the
/// initial error dwarfs the gain clamp — and stays there.
#[test]
fn unreachably_high_temp_setpoint_converges_to_all_on() {
    let chip = power8_like();
    let governor = GovernorConfig {
        temp_setpoint_c: 1000.0,
        ..GovernorConfig::standard()
    };
    let engine = SimulationEngine::new(&chip, edge_config(governor));
    let r = engine.run(Benchmark::Fft, PolicyKind::IntegralT).unwrap();
    assert_finite_metrics(&r, "IntegralT@1000C");
    let n_vrs = chip.vr_sites().len();
    for (k, d) in r.decisions().iter().enumerate() {
        assert_eq!(
            d.gating.active_count(),
            n_vrs,
            "decision {k}: not all-on under an unreachably high setpoint"
        );
    }
}

/// The power governor at a 0 W cap sheds to the floor exactly like the
/// temperature governor at 0 °C.
#[test]
fn unreachably_low_power_cap_clamps_to_the_floor() {
    let chip = power8_like();
    let governor = GovernorConfig {
        power_cap_w: 0.0,
        ..GovernorConfig::standard()
    };
    let engine = SimulationEngine::new(&chip, edge_config(governor));
    let governed = engine.run(Benchmark::Radix, PolicyKind::IntegralP).unwrap();
    let naive = engine.run(Benchmark::Radix, PolicyKind::Naive).unwrap();
    assert_finite_metrics(&governed, "IntegralP@0W");
    for (dg, dn) in governed.decisions().iter().zip(naive.decisions()) {
        for domain in chip.domains() {
            assert_eq!(
                dg.gating.active_among(domain.vrs()),
                dn.gating.active_among(domain.vrs())
            );
        }
    }
}

/// The power governor under an absurdly generous cap (1 MW) spends all
/// its headroom: all-on from the first decision onward.
#[test]
fn unreachably_high_power_cap_converges_to_all_on() {
    let chip = power8_like();
    let governor = GovernorConfig {
        power_cap_w: 1e6,
        ..GovernorConfig::standard()
    };
    let engine = SimulationEngine::new(&chip, edge_config(governor));
    let r = engine.run(Benchmark::Radix, PolicyKind::IntegralP).unwrap();
    assert_finite_metrics(&r, "IntegralP@1MW");
    let n_vrs = chip.vr_sites().len();
    for (k, d) in r.decisions().iter().enumerate() {
        assert_eq!(d.gating.active_count(), n_vrs, "decision {k}: not all-on");
    }
}
