//! Lifecycle of the content-addressed scenario cache and the sharded
//! batch executor behind it: a cold batch fills the cache, a warm batch
//! answers byte-identically without touching the engine, a changed
//! engine configuration changes the scenario hash and forces
//! re-simulation, duplicate in-flight scenarios coalesce onto exactly
//! one engine run, and a corrupt entry is rejected loudly instead of
//! served.

use experiments::context::ExpOptions;
use experiments::service::{
    answer_one, run_batch, BatchOptions, CellSource, ScenarioCache, ScenarioSpec, ServeCounters,
};
use experiments::telemetry::TelemetryCtx;
use simkit::telemetry::json::{parse, JsonValue};
use simkit::telemetry::manifest::{RunManifest, TRACE_FILE};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use thermogater::PolicyKind;
use workload::Benchmark;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tg-serve-it-{tag}-{}", std::process::id()))
}

fn fresh_cache(tag: &str) -> ScenarioCache {
    let dir = temp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    ScenarioCache::new(dir)
}

fn tiny_spec(benchmark: Benchmark, policy: PolicyKind) -> ScenarioSpec {
    ScenarioSpec::new(benchmark, policy, ExpOptions::tiny().engine_config())
}

#[test]
fn cold_then_warm_batch_is_byte_identical_and_pure_hit() {
    let cache = fresh_cache("coldwarm");
    let specs: Vec<ScenarioSpec> = [Benchmark::Fft, Benchmark::LuNcb]
        .into_iter()
        .flat_map(|b| {
            [PolicyKind::AllOn, PolicyKind::OracT]
                .into_iter()
                .map(move |p| tiny_spec(b, p))
        })
        .collect();
    let opts = BatchOptions {
        quiet: true,
        ..BatchOptions::for_threads(2)
    };

    let cold_counters = ServeCounters::default();
    let mut cold = Vec::new();
    let answered = run_batch(
        &cache,
        specs.clone(),
        &opts,
        None,
        &cold_counters,
        |outcome| cold.push(outcome),
    );
    assert_eq!(answered, specs.len());
    assert_eq!(cold_counters.misses.load(Ordering::Relaxed), 4);
    assert_eq!(cold_counters.hits.load(Ordering::Relaxed), 0);
    assert_eq!(cold_counters.coalesced.load(Ordering::Relaxed), 0);
    assert!(cold.iter().all(|o| o.source == CellSource::Simulated));
    // Submission order survives the parallel executor.
    assert!(cold.iter().enumerate().all(|(i, o)| o.index == i));

    // The warm pass answers everything from cache: zero engine runs,
    // byte-identical records, untouched cache files.
    let entry_bytes: Vec<Vec<u8>> = specs
        .iter()
        .map(|s| std::fs::read(cache.path(s)).expect("cold pass wrote every entry"))
        .collect();
    let warm_counters = ServeCounters::default();
    let mut warm = Vec::new();
    run_batch(&cache, specs.clone(), &opts, None, &warm_counters, |o| {
        warm.push(o)
    });
    assert_eq!(warm_counters.hits.load(Ordering::Relaxed), 4);
    assert_eq!(warm_counters.misses.load(Ordering::Relaxed), 0);
    assert!(warm.iter().all(|o| o.source == CellSource::Cache));
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.hash, w.hash);
        assert_eq!(
            c.record.to_csv(),
            w.record.to_csv(),
            "cache round trip must be byte-identical"
        );
    }
    for (spec, before) in specs.iter().zip(&entry_bytes) {
        assert_eq!(&std::fs::read(cache.path(spec)).unwrap(), before);
    }
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn engine_config_change_renames_the_scenario_and_resimulates() {
    let cache = fresh_cache("rehash");
    let counters = ServeCounters::default();
    let base = tiny_spec(Benchmark::Fft, PolicyKind::AllOn);

    let first = answer_one(&cache, &base, None, &counters, true);
    assert_eq!(first.source, CellSource::Simulated);
    let again = answer_one(&cache, &base, None, &counters, true);
    assert_eq!(again.source, CellSource::Cache);
    assert_eq!(first.record, again.record);

    // One changed EngineConfig field — a different RNG seed — must
    // change the content hash, miss the cache, and re-simulate.
    let mut reseeded = base.clone();
    reseeded.engine_config.seed ^= 0xdead_beef;
    assert_ne!(base.content_hash(), reseeded.content_hash());
    assert_ne!(cache.path(&base), cache.path(&reseeded));
    let fresh = answer_one(&cache, &reseeded, None, &counters, true);
    assert_eq!(fresh.source, CellSource::Simulated);
    assert_eq!(counters.misses.load(Ordering::Relaxed), 2);
    assert_eq!(counters.hits.load(Ordering::Relaxed), 1);
    // Both entries coexist: content addressing never overwrites.
    assert!(cache.path(&base).exists() && cache.path(&reseeded).exists());
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn duplicate_scenarios_coalesce_onto_one_engine_run() {
    let cache = fresh_cache("coalesce");
    let trace_dir = temp_dir("coalesce-trace");
    let _ = std::fs::remove_dir_all(&trace_dir);
    let ctx = TelemetryCtx::create(&trace_dir).unwrap();
    let counters = ServeCounters::default();
    let spec = tiny_spec(Benchmark::Barnes, PolicyKind::PracVT);
    let copies = 6usize;
    let specs = vec![spec; copies];
    let opts = BatchOptions {
        quiet: true,
        ..BatchOptions::for_threads(4)
    };

    let mut outcomes = Vec::new();
    run_batch(&cache, specs, &opts, Some(&ctx), &counters, |o| {
        outcomes.push(o)
    });
    ctx.finish(&mut RunManifest::new("serve-it")).unwrap();

    // Exactly one engine execution; every other copy was answered
    // without one. Whether a given copy coalesced onto the in-flight
    // simulation or hit the just-written cache entry depends on timing,
    // so only the split's sum is deterministic.
    assert_eq!(counters.misses.load(Ordering::Relaxed), 1);
    assert_eq!(
        counters.hits.load(Ordering::Relaxed) + counters.coalesced.load(Ordering::Relaxed),
        (copies - 1) as u64
    );
    assert_eq!(
        outcomes
            .iter()
            .filter(|o| o.source == CellSource::Simulated)
            .count(),
        1
    );
    let first = &outcomes[0].record;
    assert!(outcomes.iter().all(|o| o.record == *first));

    // The trace agrees: exactly one `sweep.cell` event with
    // cached=false (the engine run), `copies - 1` with cached=true.
    let text = std::fs::read_to_string(trace_dir.join(TRACE_FILE)).unwrap();
    let mut live = 0usize;
    let mut cached = 0usize;
    for line in text.lines() {
        let value = parse(line).unwrap();
        if value.get("name").and_then(JsonValue::as_str) != Some("sweep.cell") {
            continue;
        }
        match value.get("cached").and_then(JsonValue::as_bool) {
            Some(false) => live += 1,
            Some(true) => cached += 1,
            None => panic!("sweep.cell event without a cached field: {line}"),
        }
    }
    assert_eq!(live, 1, "exactly one uncached sweep.cell event");
    assert_eq!(cached, copies - 1);
    let _ = std::fs::remove_dir_all(cache.dir());
    let _ = std::fs::remove_dir_all(&trace_dir);
}

#[test]
fn corrupt_cache_entries_are_rejected_and_resimulated() {
    let cache = fresh_cache("corrupt");
    let counters = ServeCounters::default();
    let spec = tiny_spec(Benchmark::Fft, PolicyKind::Naive);

    let first = answer_one(&cache, &spec, None, &counters, true);
    std::fs::write(cache.path(&spec), "# not a scenario entry\n").unwrap();
    let second = answer_one(&cache, &spec, None, &counters, true);
    assert_eq!(second.source, CellSource::Simulated);
    assert_eq!(counters.invalid.load(Ordering::Relaxed), 1);
    assert_eq!(counters.misses.load(Ordering::Relaxed), 2);
    assert_eq!(first.record, second.record);
    // The re-simulation healed the entry.
    let third = answer_one(&cache, &spec, None, &counters, true);
    assert_eq!(third.source, CellSource::Cache);
    let _ = std::fs::remove_dir_all(cache.dir());
}
