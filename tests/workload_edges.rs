//! Edge-case tests for `workload` trace handling: empty traces,
//! single-sample traces, replay clamping past the end of a short trace,
//! modulo wrap-around of per-core mixes, and the activity clamp that
//! keeps over-unity kind weights physical.

use experiments::sweep::SweepRecord;
use floorplan::reference::power8_like;
use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::replay::{read_csv, write_csv};
use workload::{Benchmark, TraceGenerator, WorkloadMix};

fn tiny_config() -> EngineConfig {
    EngineConfig {
        duration: Seconds::from_millis(3.0),
        thermal: ThermalConfig::coarse(),
        noise_window_count: 4,
        profiling_decisions: 4,
        ..EngineConfig::standard()
    }
}

#[test]
fn empty_trace_file_is_rejected() {
    let err = read_csv(&b""[..], Benchmark::LuNcb).unwrap_err();
    assert!(err.to_string().contains("empty trace file"), "{err}");
}

#[test]
fn trace_with_no_samples_is_rejected() {
    // Valid dt and column header, zero data rows.
    let body = "# dt_us=1\nblock_0,block_1\n";
    let err = read_csv(body.as_bytes(), Benchmark::LuNcb).unwrap_err();
    assert!(err.to_string().contains("no samples"), "{err}");
}

#[test]
#[should_panic(expected = "duration shorter than one sample")]
fn sub_sample_duration_panics() {
    let chip = power8_like();
    let gen = TraceGenerator::new(&chip);
    // A quarter of the default 1 µs sampling interval rounds to zero
    // samples — the generator must refuse, not emit an empty trace.
    let _ = gen.generate(Benchmark::LuNcb, Seconds::from_micros(0.25));
}

#[test]
fn single_sample_trace_round_trips_through_csv() {
    let chip = power8_like();
    let gen = TraceGenerator::new(&chip);
    let trace = gen.generate(Benchmark::Fft, Seconds::from_micros(1.0));
    assert_eq!(trace.sample_count(), 1);
    let mut buf = Vec::new();
    write_csv(&trace, &mut buf).unwrap();
    let replayed = read_csv(&buf[..], Benchmark::Fft).unwrap();
    assert_eq!(replayed.sample_count(), 1);
    assert_eq!(replayed.activity().channel_count(), chip.blocks().len());
    assert!((replayed.dt().get() - trace.dt().get()).abs() < 1e-12);
    for block in chip.blocks() {
        let orig = trace.sample(block.id(), 0);
        let back = replayed.sample(block.id(), 0);
        // write_csv stores 6 decimal places.
        assert!(
            (orig - back).abs() < 1e-6,
            "block {:?}: {orig} vs {back}",
            block.id()
        );
    }
}

/// The per-kind activity weights intentionally sum to more than the
/// per-core utilisation (Execution alone weighs up to 1.15×), so the
/// final clamp is what keeps every sample a physical activity factor.
#[test]
fn activity_stays_clamped_for_every_block_and_sample() {
    let chip = power8_like();
    let gen = TraceGenerator::new(&chip);
    let trace = gen.generate(Benchmark::LuNcb, Seconds::from_micros(200.0));
    for block in chip.blocks() {
        for &a in trace.block_activity(block.id()) {
            assert!(
                (0.02..=1.0).contains(&a),
                "block {:?} activity {a}",
                block.id()
            );
        }
    }
}

/// Replaying a trace shorter than the simulated duration clamps to the
/// final sample: a 1-sample trace and the same sample materialised for
/// the full duration must produce the identical simulation. The sample
/// value is dyadic (0.5) so per-step window averaging is bit-exact and
/// the two runs can be compared with `==`, not a tolerance.
#[test]
fn replay_clamps_to_final_sample_beyond_trace_end() {
    let chip = power8_like();
    let n_blocks = chip.blocks().len();
    let header = format!(
        "# dt_us=1\n{}\n",
        (0..n_blocks)
            .map(|b| format!("block_{b}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let row = vec!["0.500000"; n_blocks].join(",");
    let short_csv = format!("{header}{row}\n");
    let samples = 3000; // 3 ms at the 1 µs sampling interval
    let mut long_csv = header.clone();
    for _ in 0..samples {
        long_csv.push_str(&row);
        long_csv.push('\n');
    }
    let short = read_csv(short_csv.as_bytes(), Benchmark::LuNcb).unwrap();
    let long = read_csv(long_csv.as_bytes(), Benchmark::LuNcb).unwrap();
    assert_eq!(short.sample_count(), 1);
    assert_eq!(long.sample_count(), samples);

    let engine = SimulationEngine::new(&chip, tiny_config());
    let a = engine.run_trace(&short, PolicyKind::OracT).unwrap();
    let b = engine.run_trace(&long, PolicyKind::OracT).unwrap();
    assert_eq!(
        SweepRecord::from_result(&a),
        SweepRecord::from_result(&b),
        "clamped replay diverged from materialised constant trace"
    );
}

#[test]
fn run_trace_rejects_wrong_channel_count() {
    let chip = power8_like();
    let body = "# dt_us=1\nblock_0\n0.5\n";
    let trace = read_csv(body.as_bytes(), Benchmark::LuNcb).unwrap();
    let engine = SimulationEngine::new(&chip, tiny_config());
    let err = engine.run_trace(&trace, PolicyKind::OracT).unwrap_err();
    assert!(
        err.to_string().to_lowercase().contains("dimension")
            || err.to_string().contains("expected"),
        "unexpected error: {err}"
    );
}

/// A per-core mix that does not divide the chip's core count wraps
/// modulo its length instead of truncating or panicking.
#[test]
fn mix_assignment_wraps_modulo_mix_length() {
    let alternating = WorkloadMix::alternating(Benchmark::Fft, Benchmark::Radix, 2);
    assert_eq!(alternating.benchmark_for_core(0), Benchmark::Fft);
    assert_eq!(alternating.benchmark_for_core(1), Benchmark::Radix);
    assert_eq!(alternating.benchmark_for_core(5), Benchmark::Radix);
    assert_eq!(alternating.benchmark_for_core(8), Benchmark::Fft);

    let triple = WorkloadMix::new(vec![
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::OceanCp,
    ]);
    for core in 0..8 {
        assert_eq!(
            triple.benchmark_for_core(core),
            triple.benchmark_for_core(core + 3)
        );
    }
}

#[test]
#[should_panic(expected = "at least one core")]
fn empty_mix_panics() {
    let _ = WorkloadMix::new(Vec::new());
}
