//! The parallel sweep executor must be invisible in the results: the
//! records and the per-cell content-addressed cache files produced with
//! N worker threads are byte-identical to a single-threaded run.

use experiments::context::ExpOptions;
use experiments::sweep::{cache_dir, cache_path, grid};
use std::collections::BTreeMap;
use std::fs;
use thermogater::PolicyKind;
use workload::Benchmark;

fn read_cells(opts: &ExpOptions, cells: &[(Benchmark, PolicyKind)]) -> BTreeMap<String, Vec<u8>> {
    cells
        .iter()
        .map(|&(b, p)| {
            let path = cache_path(opts, b, p);
            let bytes = fs::read(&path).expect("cache file written for every cell");
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                bytes,
            )
        })
        .collect()
}

fn wipe_cells(opts: &ExpOptions, cells: &[(Benchmark, PolicyKind)]) {
    for &(b, p) in cells {
        let _ = fs::remove_file(cache_path(opts, b, p));
    }
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let benchmarks = [Benchmark::Fft, Benchmark::Volrend];
    let policies = [PolicyKind::AllOn, PolicyKind::Naive];
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let serial_opts = ExpOptions::tiny().with_threads(1);
    let parallel_opts = ExpOptions::tiny().with_threads(4);
    assert_eq!(
        cache_dir(&serial_opts),
        cache_dir(&parallel_opts),
        "thread count must not move the cache"
    );
    for &(b, p) in &cells {
        assert_eq!(
            cache_path(&serial_opts, b, p),
            cache_path(&parallel_opts, b, p),
            "thread count must not change a scenario hash"
        );
    }

    wipe_cells(&serial_opts, &cells);
    let serial = grid(&serial_opts, &benchmarks, &policies);
    let serial_files = read_cells(&serial_opts, &cells);
    assert_eq!(serial.len(), cells.len());

    wipe_cells(&parallel_opts, &cells);
    let parallel = grid(&parallel_opts, &benchmarks, &policies);
    let parallel_files = read_cells(&parallel_opts, &cells);

    assert_eq!(serial, parallel, "records differ between 1 and 4 threads");
    assert_eq!(
        serial_files, parallel_files,
        "cache CSV bytes differ between 1 and 4 threads"
    );

    // A warm re-run (any thread count) reads the cache and agrees too.
    let cached = grid(&parallel_opts, &benchmarks, &policies);
    assert_eq!(serial, cached);
    wipe_cells(&parallel_opts, &cells);
}

/// Wall-clock speedup needs real cores; CI containers may expose only
/// one, so this runs on demand (`cargo test -- --ignored`) and skips
/// itself on narrow machines. See BENCH.md for recorded numbers.
#[test]
#[ignore = "timing-sensitive; requires a multicore machine"]
fn parallel_sweep_speeds_up_on_multicore() {
    let width = std::thread::available_parallelism().map_or(1, |n| n.get());
    if width < 4 {
        eprintln!("skipping speedup check: only {width} hardware threads");
        return;
    }
    let benchmarks = [Benchmark::Raytrace, Benchmark::Barnes];
    let policies = [PolicyKind::AllOn, PolicyKind::Naive];
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let opts = ExpOptions::tiny();

    wipe_cells(&opts, &cells);
    let t = std::time::Instant::now();
    let serial = grid(&opts.clone().with_threads(1), &benchmarks, &policies);
    let serial_secs = t.elapsed().as_secs_f64();

    wipe_cells(&opts, &cells);
    let t = std::time::Instant::now();
    let parallel = grid(&opts.clone().with_threads(4), &benchmarks, &policies);
    let parallel_secs = t.elapsed().as_secs_f64();
    wipe_cells(&opts, &cells);

    assert_eq!(serial, parallel);
    let speedup = serial_secs / parallel_secs;
    assert!(
        speedup >= 2.0,
        "4-thread sweep only {speedup:.2}x faster ({serial_secs:.2}s vs {parallel_secs:.2}s)"
    );
}
