//! The parallel sweep executor must be invisible in the results: the
//! records and the per-cell CSV cache files produced with N worker
//! threads are byte-identical to a single-threaded run.

use experiments::context::ExpOptions;
use experiments::sweep::{cache_dir, grid, policy_tag};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use thermogater::PolicyKind;
use workload::Benchmark;

fn read_cells(dir: &Path, cells: &[(Benchmark, PolicyKind)]) -> BTreeMap<String, Vec<u8>> {
    cells
        .iter()
        .map(|&(b, p)| {
            let name = format!("{}-{}.csv", b.label(), policy_tag(p));
            let bytes = fs::read(dir.join(&name)).expect("cache file written for every cell");
            (name, bytes)
        })
        .collect()
}

fn wipe_cells(dir: &Path, cells: &[(Benchmark, PolicyKind)]) {
    for &(b, p) in cells {
        let _ = fs::remove_file(dir.join(format!("{}-{}.csv", b.label(), policy_tag(p))));
    }
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let benchmarks = [Benchmark::Fft, Benchmark::Volrend];
    let policies = [PolicyKind::AllOn, PolicyKind::Naive];
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let serial_opts = ExpOptions::tiny().with_threads(1);
    let parallel_opts = ExpOptions::tiny().with_threads(4);
    let dir = cache_dir(&serial_opts);
    assert_eq!(
        dir,
        cache_dir(&parallel_opts),
        "thread count must not move the cache"
    );

    wipe_cells(&dir, &cells);
    let serial = grid(&serial_opts, &benchmarks, &policies);
    let serial_files = read_cells(&dir, &cells);
    assert_eq!(serial.len(), cells.len());

    wipe_cells(&dir, &cells);
    let parallel = grid(&parallel_opts, &benchmarks, &policies);
    let parallel_files = read_cells(&dir, &cells);

    assert_eq!(serial, parallel, "records differ between 1 and 4 threads");
    assert_eq!(
        serial_files, parallel_files,
        "cache CSV bytes differ between 1 and 4 threads"
    );

    // A warm re-run (any thread count) reads the cache and agrees too.
    let cached = grid(&parallel_opts, &benchmarks, &policies);
    assert_eq!(serial, cached);
    wipe_cells(&dir, &cells);
}

/// Wall-clock speedup needs real cores; CI containers may expose only
/// one, so this runs on demand (`cargo test -- --ignored`) and skips
/// itself on narrow machines. See BENCH.md for recorded numbers.
#[test]
#[ignore = "timing-sensitive; requires a multicore machine"]
fn parallel_sweep_speeds_up_on_multicore() {
    let width = std::thread::available_parallelism().map_or(1, |n| n.get());
    if width < 4 {
        eprintln!("skipping speedup check: only {width} hardware threads");
        return;
    }
    let benchmarks = [Benchmark::Raytrace, Benchmark::Barnes];
    let policies = [PolicyKind::AllOn, PolicyKind::Naive];
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let dir = cache_dir(&ExpOptions::tiny());

    wipe_cells(&dir, &cells);
    let t = std::time::Instant::now();
    let serial = grid(&ExpOptions::tiny().with_threads(1), &benchmarks, &policies);
    let serial_secs = t.elapsed().as_secs_f64();

    wipe_cells(&dir, &cells);
    let t = std::time::Instant::now();
    let parallel = grid(&ExpOptions::tiny().with_threads(4), &benchmarks, &policies);
    let parallel_secs = t.elapsed().as_secs_f64();
    wipe_cells(&dir, &cells);

    assert_eq!(serial, parallel);
    let speedup = serial_secs / parallel_secs;
    assert!(
        speedup >= 2.0,
        "4-thread sweep only {speedup:.2}x faster ({serial_secs:.2}s vs {parallel_secs:.2}s)"
    );
}
