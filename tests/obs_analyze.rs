//! Trace analytics end to end: the committed fixture run under
//! `crates/experiments/tests/fixtures/run_a/` has hand-computed
//! statistics, so [`simkit::telemetry::analyze::TraceAnalysis`] and the
//! renderers/diff engine built on it can be checked for exact values —
//! counts, percentiles, and span durations — not just for shape. Also
//! validates every committed `BENCH_*.json` perf snapshot against its
//! schema.

use experiments::obs::{diff_analyses, diff_snapshots, DiffConfig};
use experiments::report::analysis_report;
use experiments::snapshot::{BenchSnapshot, SNAPSHOT_SCHEMA};
use simkit::telemetry::analyze::TraceAnalysis;
use std::path::{Path, PathBuf};

fn fixture_run() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/experiments/tests/fixtures/run_a")
}

fn fixture_analysis() -> TraceAnalysis {
    TraceAnalysis::from_path(&fixture_run().join("trace.jsonl")).expect("fixture trace parses")
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn fixture_counts_are_exact() {
    use simkit::telemetry::EventKind;
    let a = fixture_analysis();
    assert_eq!(a.events, 14);
    assert_eq!(a.malformed_lines, 0);
    assert!(!a.truncated);
    for (kind, expected) in [
        (EventKind::SpanStart, 1),
        (EventKind::SpanEnd, 1),
        (EventKind::Counter, 1),
        (EventKind::Gauge, 4),
        (EventKind::Histogram, 2),
        (EventKind::Gating, 1),
        (EventKind::Emergency, 1),
        (EventKind::Solve, 2),
        (EventKind::Progress, 1),
    ] {
        assert_eq!(a.kind_count(kind), expected, "{:?}", kind.as_str());
    }
    assert_eq!(a.counter("engine.steps"), 10);
    assert!(close(a.duration_s(), 0.13));
}

#[test]
fn fixture_percentiles_are_exact() {
    let a = fixture_analysis();
    let temp = a.rollup("thermal.max_silicon_c").expect("gauge rollup");
    assert_eq!(temp.count(), 4);
    assert_eq!(temp.min(), Some(60.0));
    assert_eq!(temp.max(), Some(66.0));
    assert_eq!(temp.mean(), Some(63.0));
    assert!(close(temp.percentile(50.0).unwrap(), 63.0));
    assert!(close(temp.percentile(95.0).unwrap(), 65.7));
    assert!(close(temp.percentile(99.0).unwrap(), 65.94));

    let noise = a.rollup("engine.window_noise_pct").expect("hist rollup");
    assert_eq!(noise.count(), 2);
    assert_eq!(noise.mean(), Some(6.0));
    assert!(close(noise.percentile(50.0).unwrap(), 6.0));
}

#[test]
fn fixture_spans_solvers_gating_emergency_are_exact() {
    let a = fixture_analysis();

    let run = a.span("engine.run").expect("span stats");
    assert_eq!(run.completed(), 1);
    assert_eq!(run.open, 0);
    assert_eq!(run.unmatched_ends, 0);
    assert!(close(run.durations.percentile(50.0).unwrap(), 0.13));
    assert!(close(run.durations.sum(), 0.13));

    let gs = a.solver("thermal.gs").expect("solver rollup");
    assert_eq!(gs.solves(), 2);
    assert!(close(gs.iters.percentile(50.0).unwrap(), 10.0));
    assert!(close(gs.iters.percentile(95.0).unwrap(), 11.8));
    assert_eq!(gs.iters.max(), Some(12.0));
    assert!(close(gs.residuals.max().unwrap(), 2e-10));

    assert_eq!(a.gating.decisions, 1);
    assert_eq!(a.gating.churn(), 3);
    assert_eq!(a.gating.active.mean(), Some(10.0));

    assert_eq!(a.emergency.checks, 1);
    assert_eq!(a.emergency.with_emergency, 1);
    assert_eq!(a.emergency.flagged_domains, 2);
    assert_eq!(a.emergency.true_domains, 1);
    assert_eq!(a.emergency.mispredicted, 0);
    assert_eq!(a.emergency.emergency_rate(), Some(1.0));
}

#[test]
fn fixture_summary_renders_the_numbers() {
    let text = analysis_report(&fixture_analysis());
    for needle in [
        "events: 14",
        "engine.steps",
        "thermal.max_silicon_c",
        "65.7000", // p95 of the gauge
        "engine.run",
        "thermal.gs",
        "gating: 1 decisions, churn 3 (+2 / -1)",
        "emergency: 1 checks, 1 with emergencies (100.00% rate)",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn fixture_self_diff_has_zero_drift() {
    let a = fixture_analysis();
    let report = diff_analyses(&a, &a, &DiffConfig::new());
    assert!(!report.has_regression(), "{}", report.render(true));
    assert!(report.deltas.iter().all(|d| d.rel_change == 0.0));
}

/// Every committed BENCH_*.json must carry the schema tag and parse
/// back losslessly; an injected solver-iteration regression against it
/// must gate with the offending metric named.
#[test]
fn committed_bench_snapshots_validate_and_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = 0;
    for entry in std::fs::read_dir(root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("snapshot readable");
        assert!(
            text.contains(SNAPSHOT_SCHEMA),
            "{name} lacks the {SNAPSHOT_SCHEMA} schema tag"
        );
        let snap = BenchSnapshot::from_json(&text)
            .unwrap_or_else(|e| panic!("{name} fails schema validation: {e}"));
        assert!(!snap.entries.is_empty(), "{name} has no policy entries");

        // Round trip.
        let again = BenchSnapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(again, snap);

        // Self-diff: zero drift. Injected regression: named and gating.
        assert!(!diff_snapshots(&snap, &snap, &DiffConfig::new()).has_regression());
        let mut worse = snap.clone();
        let entry = &mut worse.entries[0];
        let policy = entry.policy.clone();
        let site = entry.solver[0].site.clone();
        entry.solver[0].iters_p95 *= 2.0;
        let report = diff_snapshots(&snap, &worse, &DiffConfig::new());
        let metric = format!("snap.{policy}.solver.{site}.iters_p95");
        assert!(
            report.regressions().any(|d| d.metric == metric),
            "expected {metric} to regress"
        );
    }
    assert!(found > 0, "no committed BENCH_*.json snapshot at repo root");
}

/// The committed reference snapshot's grid-scaling axis must keep
/// proving the multigrid win: at its finest grid (≥10× the cells of the
/// production 64×64), mgcg needs ≤⅕ the iterations of Jacobi-CG and
/// ≤½ the total wall (hierarchy setup included) of the best PR-5
/// backend. These are committed numbers, so the gate is deterministic —
/// it fails when someone regenerates the snapshot from a build where
/// multigrid lost its advantage.
#[test]
fn committed_scaling_axis_proves_the_multigrid_win() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_ref.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_ref.json readable");
    let snap = BenchSnapshot::from_json(&text).expect("reference snapshot parses");
    assert!(
        !snap.scaling.is_empty(),
        "BENCH_ref.json lacks the grid-scaling axis"
    );
    let finest = snap.scaling.iter().map(|s| s.grid).max().unwrap();
    assert!(
        finest * finest >= 10 * 64 * 64,
        "finest committed grid {finest}² is under 10× the production cell count"
    );
    let cell = |backend: &str| {
        snap.scaling
            .iter()
            .find(|s| s.grid == finest && s.backend == backend)
            .unwrap_or_else(|| panic!("no {backend} cell at {finest}×{finest}"))
    };
    let (cg, mgcg, direct) = (cell("cg"), cell("mgcg"), cell("direct"));
    assert!(
        mgcg.iters_mean * 5.0 <= cg.iters_mean,
        "mgcg {} vs cg {} iterations at {finest}×{finest}: advantage under 5×",
        mgcg.iters_mean,
        cg.iters_mean
    );
    let total = |s: &experiments::snapshot::ScalingEntry| s.setup_s + s.wall_s;
    let best_other = total(cg).min(total(direct));
    assert!(
        total(mgcg) * 2.0 <= best_other,
        "mgcg total {:.3}s vs best alternative {best_other:.3}s at {finest}×{finest}: \
         advantage under 2×",
        total(mgcg)
    );
}
