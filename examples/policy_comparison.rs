//! Compare every gating policy on one workload — a miniature of the
//! paper's Figs. 9/10/11 for a single benchmark.
//!
//! ```text
//! cargo run --release --example policy_comparison [benchmark-label]
//! ```
//!
//! e.g. `cargo run --release --example policy_comparison fft`.

use floorplan::reference::power8_like;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn main() -> Result<(), simkit::Error> {
    let label = std::env::args().nth(1).unwrap_or_else(|| "lu_ncb".into());
    let benchmark = Benchmark::ALL
        .into_iter()
        .find(|b| b.label() == label)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {label:?}, using lu_ncb");
            Benchmark::LuNcb
        });

    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, EngineConfig::fast());

    println!(
        "{:9} {:>7} {:>9} {:>7} {:>8} {:>8} {:>7}",
        "policy", "T_max", "gradient", "η (%)", "loss (W)", "noise(%)", "#active"
    );
    for policy in PolicyKind::ALL {
        let r = engine.run(benchmark, policy)?;
        println!(
            "{:9} {:>7.2} {:>9.2} {:>7.2} {:>8.2} {:>8} {:>7.1}",
            policy.label(),
            r.max_temperature().get(),
            r.max_gradient(),
            r.mean_efficiency() * 100.0,
            r.mean_total_vr_loss().get(),
            r.max_noise_percent()
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            r.mean_active_count(),
        );
    }
    println!(
        "\nReading guide (paper Section 6): gating policies sustain \
         near-peak η where all-on drifts below it; OracT/PracT cool the \
         chip but hurt noise; OracV protects noise but heats logic; the \
         VT policies get both."
    );
    Ok(())
}
