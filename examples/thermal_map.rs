//! Render the chip's steady-state heat map under a chosen workload and
//! gating policy as ASCII art — a Fig. 12-style view from the library's
//! public API.
//!
//! ```text
//! cargo run --release --example thermal_map [benchmark-label] [policy]
//! ```
//!
//! e.g. `cargo run --release --example thermal_map chol oracv`.

use floorplan::reference::power8_like;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn main() -> Result<(), simkit::Error> {
    let bench_label = std::env::args().nth(1).unwrap_or_else(|| "chol".into());
    let policy_arg = std::env::args().nth(2).unwrap_or_else(|| "allon".into());
    let benchmark = Benchmark::ALL
        .into_iter()
        .find(|b| b.label() == bench_label)
        .unwrap_or(Benchmark::Cholesky);
    let policy = match policy_arg.as_str() {
        "offchip" => PolicyKind::OffChip,
        "naive" => PolicyKind::Naive,
        "oract" => PolicyKind::OracT,
        "oracv" => PolicyKind::OracV,
        "oracvt" => PolicyKind::OracVT,
        "pract" => PolicyKind::PracT,
        "pracvt" => PolicyKind::PracVT,
        _ => PolicyKind::AllOn,
    };

    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, EngineConfig::fast());
    let result = engine.run(benchmark, policy)?;

    println!(
        "{} under {} — T_max {:.1} °C, gradient {:.1} °C\n",
        benchmark,
        policy,
        result.max_temperature().get(),
        result.max_gradient()
    );

    // Shade ramp over the heat map captured at the instant of T_max.
    const RAMP: &[u8] = b" .:-=+*#%@";
    let map = result.heatmap_at_tmax();
    let (lo, hi) = map
        .iter()
        .flatten()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    for row in map.iter().rev() {
        let line: String = row
            .iter()
            .map(|&v| {
                let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
                RAMP[((t * (RAMP.len() - 1) as f64) as usize).min(RAMP.len() - 1)] as char
            })
            .collect();
        println!("{line}");
    }
    println!("\nscale: ' ' = {lo:.1} °C … '@' = {hi:.1} °C");
    println!(
        "(cores occupy the upper two bands; the bottom band is L3 banks, \
         NOC column, and memory controllers)"
    );
    Ok(())
}
