//! Early design-space exploration with the fast block-mode thermal
//! model: sweep the per-domain regulator count and see the steady-state
//! thermal cost of a sparser distributed network (the paper's
//! footnote 2), without paying for full grid-mode co-simulation.
//!
//! ```text
//! cargo run --release --example design_exploration
//! ```

use floorplan::reference::power8_like_with_vr_counts;
use power::{PowerModel, TechnologyParams};
use simkit::units::{Celsius, Watts};
use thermal::{BlockThermalModel, PackageParams};
use vreg::{RegulatorBank, RegulatorDesign};

fn main() -> Result<(), simkit::Error> {
    println!(
        "{:>9} {:>7} {:>12} {:>12} {:>12}",
        "VRs/core", "VRs/L3", "η @ 60 % (%)", "VR loss (W)", "T_max (°C)"
    );

    for (core_vrs, l3_vrs) in [(4, 2), (6, 2), (9, 3), (12, 4)] {
        let chip = power8_like_with_vr_counts(core_vrs, l3_vrs);
        let power = PowerModel::calibrated(&chip, TechnologyParams::table1());
        let thermal = BlockThermalModel::new(&chip, PackageParams::default());

        // A representative 60 %-utilisation operating point.
        let activity = 0.6;
        let t_guess = Celsius::new(70.0);
        let mut block_powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| power.block_power(b.id(), activity, t_guess))
            .collect();

        // Regulator losses under peak-efficiency gating, added onto the
        // blocks hosting each active regulator.
        let vdd = TechnologyParams::table1().vdd;
        let mut total_loss = Watts::ZERO;
        let mut eta_acc = 0.0;
        for domain in chip.domains() {
            let bank = RegulatorBank::new(RegulatorDesign::fivr(), domain.vr_count());
            let demand = domain
                .blocks()
                .iter()
                .map(|&b| block_powers[b.0])
                .sum::<Watts>()
                / vdd;
            let n_on = bank.required_active(demand);
            let loss = bank.per_regulator_loss(demand, n_on, vdd)?;
            eta_acc += bank.efficiency(demand, n_on)?;
            // The first n_on regulators of the domain stand in for the
            // active set in this static exploration.
            for (k, &vr) in domain.vrs().iter().enumerate() {
                if k < n_on {
                    let block = thermal.vr_block(vr.0);
                    block_powers[block.0] += loss;
                    total_loss += loss;
                }
            }
        }
        let eta = eta_acc / chip.domains().len() as f64;

        let temps = thermal.steady_state(&block_powers)?;
        let t_max = temps.iter().map(|t| t.get()).fold(f64::MIN, f64::max);

        println!(
            "{:>9} {:>7} {:>12.2} {:>12.2} {:>12.2}",
            core_vrs,
            l3_vrs,
            eta * 100.0,
            total_loss.get(),
            t_max
        );
    }

    println!(
        "\nBlock-mode exploration runs in milliseconds per design point; \
         switch to `SimulationEngine` (grid mode, closed loop) for the \
         final numbers of a chosen configuration."
    );
    Ok(())
}
