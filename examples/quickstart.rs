//! Quickstart: simulate one benchmark under ThermoGater's practical
//! thermally- and voltage-noise-aware policy and print the headline
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use floorplan::reference::power8_like;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn main() -> Result<(), simkit::Error> {
    // 1. The chip: an 8-core POWER8-like part with 96 distributed
    //    on-chip voltage regulators over 16 Vdd-domains.
    let chip = power8_like();
    println!(
        "chip: {} blocks, {} Vdd-domains, {} regulators, {:.0} mm²",
        chip.blocks().len(),
        chip.domains().len(),
        chip.vr_sites().len(),
        chip.die_area_mm2()
    );

    // 2. The engine: workload → power → regulators → thermal → noise →
    //    governor, closed-loop. `fast()` keeps this example snappy;
    //    `standard()` is the paper-faithful configuration.
    let engine = SimulationEngine::new(&chip, EngineConfig::fast());

    // 3. Run the PracVT policy — ThermoGater's practical, deployable
    //    governor — on one SPLASH-2x workload.
    let result = engine.run(Benchmark::LuNcb, PolicyKind::PracVT)?;

    println!("benchmark: {}", result.benchmark());
    println!("policy:    {}", result.policy());
    println!("T_max:             {:.2}", result.max_temperature());
    println!("thermal gradient:  {:.2} °C", result.max_gradient());
    println!(
        "conversion η:      {:.1} % (vs η_peak = 90 %)",
        result.mean_efficiency() * 100.0
    );
    println!("regulator loss:    {:.2}", result.mean_total_vr_loss());
    println!(
        "max voltage noise: {:.1} % of Vdd",
        result.max_noise_percent().unwrap_or(0.0)
    );
    println!(
        "mean active regulators: {:.1} / {}",
        result.mean_active_count(),
        chip.vr_sites().len()
    );
    Ok(())
}
