//! Build a custom chip from scratch — a small 2-core part with its own
//! Vdd-domains and regulator placement — and govern it with ThermoGater.
//!
//! Shows that nothing in the stack is hard-wired to the POWER8-like
//! reference floorplan: the same engine runs any `Floorplan`.
//!
//! ```text
//! cargo run --release --example custom_chip
//! ```

use floorplan::{DomainKind, FloorplanBuilder, UnitKind};
use simkit::units::Seconds;
use simkit::{Point, Rect};
use thermal::ThermalConfig;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn main() -> Result<(), simkit::Error> {
    // A 12 × 8 mm die: two cores on top, one shared L3 on the bottom.
    let mut b = FloorplanBuilder::new(Rect::from_mm(0.0, 0.0, 12.0, 8.0));

    for core in 0..2 {
        let x0 = core as f64 * 6.0;
        let d = b.add_domain(format!("core{core}"), DomainKind::Core);
        b.add_block(
            d,
            format!("core{core}.EXU"),
            UnitKind::Execution,
            Rect::from_mm(x0, 6.0, 3.0, 2.0),
        )?;
        b.add_block(
            d,
            format!("core{core}.LSU"),
            UnitKind::LoadStore,
            Rect::from_mm(x0 + 3.0, 6.0, 3.0, 2.0),
        )?;
        b.add_block(
            d,
            format!("core{core}.IFU"),
            UnitKind::InstructionFetch,
            Rect::from_mm(x0, 4.0, 3.0, 2.0),
        )?;
        b.add_block(
            d,
            format!("core{core}.ISU"),
            UnitKind::InstructionSchedule,
            Rect::from_mm(x0 + 3.0, 4.0, 3.0, 2.0),
        )?;
        b.add_block(
            d,
            format!("core{core}.L2"),
            UnitKind::L2Cache,
            Rect::from_mm(x0, 3.0, 6.0, 1.0),
        )?;
        // Six regulators per core domain, 2 × 3 uniform grid.
        for gy in 0..2 {
            for gx in 0..3 {
                b.add_vr(
                    d,
                    Point::from_mm(x0 + 1.0 + 2.0 * gx as f64, 4.0 + 2.5 * gy as f64),
                    0.04,
                )?;
            }
        }
    }

    let l3 = b.add_domain("l3", DomainKind::L3Bank);
    b.add_block(
        l3,
        "l3.bank",
        UnitKind::L3Cache,
        Rect::from_mm(0.0, 0.0, 12.0, 3.0),
    )?;
    for g in 0..4 {
        b.add_vr(l3, Point::from_mm(1.5 + 3.0 * g as f64, 1.5), 0.04)?;
    }

    let chip = b.build()?;
    println!(
        "custom chip: {} blocks, {} domains, {} regulators",
        chip.blocks().len(),
        chip.domains().len(),
        chip.vr_sites().len()
    );

    // A configuration proportioned to the smaller die: a 35 W TDP keeps
    // the power density in the same class as the reference chip, and the
    // thermal grid matches the 12 × 8 mm outline.
    let mut tech = power::TechnologyParams::table1();
    tech.tdp = simkit::units::Watts::new(35.0);
    let config = EngineConfig {
        duration: Seconds::from_millis(4.0),
        tech,
        thermal: ThermalConfig {
            nx: 24,
            ny: 16,
            ..ThermalConfig::coarse()
        },
        noise_window_count: 12,
        profiling_decisions: 4,
        ..EngineConfig::standard()
    };
    let engine = SimulationEngine::new(&chip, config);

    for policy in [PolicyKind::AllOn, PolicyKind::PracVT] {
        let r = engine.run(Benchmark::Radix, policy)?;
        println!(
            "{:8}  T_max {:.2} °C  gradient {:.2} °C  η {:.1} %  noise {:.1} %",
            policy.label(),
            r.max_temperature().get(),
            r.max_gradient(),
            r.mean_efficiency() * 100.0,
            r.max_noise_percent().unwrap_or(0.0)
        );
    }
    println!("\nThermoGater governs any floorplan built with FloorplanBuilder.");
    Ok(())
}
