#!/usr/bin/env bash
# Offline CI: formatting, lints, build, and the full test suite.
# `crates/bench` is excluded (its Criterion harness needs registry
# access); everything below runs with no network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== telemetry smoke: traced run + machine-readable validation =="
TELEMETRY_DIR="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_DIR"' EXIT
cargo run --release -q -p experiments --bin simulate -- \
    --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
    --quiet --telemetry="$TELEMETRY_DIR"
test -s "$TELEMETRY_DIR/trace.jsonl"
test -s "$TELEMETRY_DIR/manifest.json"
cargo run --release -q -p experiments --bin telemetry_check -- "$TELEMETRY_DIR" \
    --require span_start,span_end,counter,gauge,histogram,gating,emergency,solve,progress

echo "CI OK"
