#!/usr/bin/env bash
# Offline CI: formatting, lints, build, and the full test suite.
# `crates/bench` is excluded (its Criterion harness needs registry
# access); everything below runs with no network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "CI OK"
