#!/usr/bin/env bash
# Offline CI: formatting, lints, build, and the full test suite.
# `crates/bench` is excluded (its Criterion harness needs registry
# access); everything below runs with no network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== telemetry smoke: traced run + machine-readable validation =="
TELEMETRY_DIR="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_DIR"' EXIT
cargo run --release -q -p experiments --bin simulate -- \
    --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
    --quiet --telemetry="$TELEMETRY_DIR"
test -s "$TELEMETRY_DIR/trace.jsonl"
test -s "$TELEMETRY_DIR/manifest.json"
cargo run --release -q -p experiments --bin telemetry_check -- "$TELEMETRY_DIR" \
    --require span_start,span_end,counter,gauge,histogram,gating,emergency,solve,progress

echo "== tg-obs: summarize, export, self-diff (must be zero-drift) =="
cargo run --release -q -p experiments --bin tg-obs -- summarize "$TELEMETRY_DIR"
cargo run --release -q -p experiments --bin tg-obs -- export "$TELEMETRY_DIR" \
    --out "$TELEMETRY_DIR/series.csv"
test -s "$TELEMETRY_DIR/series.csv"
cargo run --release -q -p experiments --bin tg-obs -- diff "$TELEMETRY_DIR" "$TELEMETRY_DIR"

echo "== tg-obs: perf snapshot (CI artifact at target/ci/BENCH_ci.json) =="
mkdir -p target/ci
cargo run --release -q -p experiments --bin tg-obs -- bench-snapshot \
    --label ci --policies allon,oract,pracvt --out target/ci
cargo run --release -q -p experiments --bin tg-obs -- \
    diff target/ci/BENCH_ci.json target/ci/BENCH_ci.json

echo "== tg-verify: physics oracles + corpus replay (determinism via cmp) =="
cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_a.txt
cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_b.txt
cmp target/ci/verify_a.txt target/ci/verify_b.txt

echo "== tg-verify: pinned solver backends (direct and cg must both pass) =="
# The default leg above runs under Auto; these two pin the direct LDLT
# path and the CG path end-to-end, so every oracle (including the
# serial-vs-parallel sweep with per-engine factor caches) is exercised
# against both solver families.
SIMKIT_SOLVER=direct cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_direct.txt
SIMKIT_SOLVER=cg cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_cg.txt

echo "== cross-backend run diff: cg vs direct must agree on the physics =="
# Same trace, same policy, opposite solver families: the solver-agnostic
# diff gates on identical event structure, gating decisions, emergency
# behaviour, and per-system solve counts, with simulation metrics within
# 1e-6 relative (measured agreement is ~6e-9 — see BENCH.md).
mkdir -p "$TELEMETRY_DIR/cg" "$TELEMETRY_DIR/direct"
for backend in cg direct; do
    SIMKIT_SOLVER=$backend cargo run --release -q -p experiments --bin simulate -- \
        --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
        --quiet --telemetry="$TELEMETRY_DIR/$backend"
done
cargo run --release -q -p experiments --bin tg-obs -- diff --solver-agnostic \
    "$TELEMETRY_DIR/cg" "$TELEMETRY_DIR/direct"

echo "CI OK"
