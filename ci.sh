#!/usr/bin/env bash
# Offline CI: formatting, lints, build, and the full test suite.
# `crates/bench` is excluded (its Criterion harness needs registry
# access); everything below runs with no network.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== telemetry smoke: traced run + machine-readable validation =="
TELEMETRY_DIR="$(mktemp -d)"
trap 'rm -rf "$TELEMETRY_DIR"' EXIT
cargo run --release -q -p experiments --bin simulate -- \
    --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
    --frames 25 --quiet --telemetry="$TELEMETRY_DIR"
test -s "$TELEMETRY_DIR/trace.jsonl"
test -s "$TELEMETRY_DIR/manifest.json"
cargo run --release -q -p experiments --bin telemetry_check -- "$TELEMETRY_DIR" \
    --require span_start,span_end,counter,gauge,histogram,gating,emergency,solve,progress,frame

echo "== tg-obs: summarize, export, self-diff (must be zero-drift) =="
cargo run --release -q -p experiments --bin tg-obs -- summarize "$TELEMETRY_DIR"
cargo run --release -q -p experiments --bin tg-obs -- export "$TELEMETRY_DIR" \
    --out "$TELEMETRY_DIR/series.csv"
test -s "$TELEMETRY_DIR/series.csv"
cargo run --release -q -p experiments --bin tg-obs -- diff "$TELEMETRY_DIR" "$TELEMETRY_DIR"

echo "== tg-obs: live leg (watch determinism, rules gating, --json) =="
TG_OBS="$PWD/target/release/tg-obs"
RULES_SMOKE="$PWD/crates/experiments/tests/fixtures/rules_smoke.json"
RULES_FAILING="$PWD/crates/experiments/tests/fixtures/rules_failing.json"
# Two identical --live smoke runs in separate parent dirs: watch is
# invoked from each parent with the same relative path so the rendered
# `run:` header matches between them.
mkdir -p "$TELEMETRY_DIR/wa" "$TELEMETRY_DIR/wb"
for w in wa wb; do
    cargo run --release -q -p experiments --bin simulate -- \
        --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
        --frames 25 --quiet --live --telemetry="$TELEMETRY_DIR/$w/run"
    # The live sink self-reports its cost into the trace it audits.
    grep -q '"telemetry.live.events"' "$TELEMETRY_DIR/$w/run/trace.jsonl"
    grep -q '"telemetry.live.overhead"' "$TELEMETRY_DIR/$w/run/trace.jsonl"
done
for w in wa wb; do
    (cd "$TELEMETRY_DIR/$w" && "$TG_OBS" watch run --once \
        --rules "$RULES_SMOKE" --status-every 100 > watch.txt)
    # The final summary below the marker is byte-identical to batch
    # summarize on the same finished trace.
    sed '1,/^--- summary ---$/d' "$TELEMETRY_DIR/$w/watch.txt" > "$TELEMETRY_DIR/$w/watch_tail.txt"
    (cd "$TELEMETRY_DIR/$w" && "$TG_OBS" summarize run > summarize.txt)
    cmp "$TELEMETRY_DIR/$w/watch_tail.txt" "$TELEMETRY_DIR/$w/summarize.txt"
done
# The streaming section (status lines + rule tallies) contains only
# deterministic aggregates — never wall-clock — so it must render
# byte-identically across the two independent runs.
sed -n '1,/^--- summary ---$/p' "$TELEMETRY_DIR/wa/watch.txt" > "$TELEMETRY_DIR/head_a.txt"
sed -n '1,/^--- summary ---$/p' "$TELEMETRY_DIR/wb/watch.txt" > "$TELEMETRY_DIR/head_b.txt"
cmp "$TELEMETRY_DIR/head_a.txt" "$TELEMETRY_DIR/head_b.txt"
# check: the committed smoke rules pass the live run (exit 0)…
"$TG_OBS" check "$TELEMETRY_DIR/wa/run" --rules "$RULES_SMOKE"
# …and the deliberately-failing rules file must exit exactly 1 (a rule
# violation, not a usage error) naming the failed rules on stderr.
set +e
"$TG_OBS" check "$TELEMETRY_DIR/wa/run" --rules "$RULES_FAILING" \
    > "$TELEMETRY_DIR/check_fail.txt" 2> "$TELEMETRY_DIR/check_fail.err"
rc=$?
set -e
test "$rc" -eq 1
grep -q '^failed: unreachable-event-count$' "$TELEMETRY_DIR/check_fail.err"
# summarize --json: stable machine-readable summary, identical across
# invocations of the same trace.
"$TG_OBS" summarize "$TELEMETRY_DIR/wa/run" --json --out "$TELEMETRY_DIR/sum_a.json"
"$TG_OBS" summarize "$TELEMETRY_DIR/wa/run" --json --out "$TELEMETRY_DIR/sum_b.json"
cmp "$TELEMETRY_DIR/sum_a.json" "$TELEMETRY_DIR/sum_b.json"
grep -q '"schema":"thermogater.summary/v1"' "$TELEMETRY_DIR/sum_a.json"

echo "== tg-obs: timeline/flame/top (Perfetto export + deterministic profiler) =="
# timeline must emit Chrome Trace JSON (validated internally before it
# is written; the grep is a belt-and-braces shape check), flame must
# emit non-empty collapsed stacks, and the structural `top` report must
# be byte-identical across two identical seeded runs.
cargo run --release -q -p experiments --bin tg-obs -- timeline "$TELEMETRY_DIR" \
    --out "$TELEMETRY_DIR/timeline.json"
grep -q '"traceEvents"' "$TELEMETRY_DIR/timeline.json"
cargo run --release -q -p experiments --bin tg-obs -- flame "$TELEMETRY_DIR" \
    --out "$TELEMETRY_DIR/profile.folded"
test -s "$TELEMETRY_DIR/profile.folded"
mkdir -p "$TELEMETRY_DIR/rerun"
cargo run --release -q -p experiments --bin simulate -- \
    --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
    --frames 25 --quiet --telemetry="$TELEMETRY_DIR/rerun"
cargo run --release -q -p experiments --bin tg-obs -- top "$TELEMETRY_DIR" \
    --out "$TELEMETRY_DIR/top_a.txt"
cargo run --release -q -p experiments --bin tg-obs -- top "$TELEMETRY_DIR/rerun" \
    --out "$TELEMETRY_DIR/top_b.txt"
cmp "$TELEMETRY_DIR/top_a.txt" "$TELEMETRY_DIR/top_b.txt"

echo "== tg-serve: content-addressed scenario service (cold vs warm batch) =="
# The full 14 × 8 tiny grid as a request file: the cold pass simulates
# all 112 scenarios, the warm pass must answer every one from the
# content-addressed cache — byte-identical stdout and, per the trace's
# serve.* counters, zero engine executions.
SERVE_DIR="$TELEMETRY_DIR/serve"
mkdir -p "$SERVE_DIR"
for b in barnes chol fft fmm lu_cb lu_ncb oc_cp oc_ncp radio radix rayt volr water_n water_s; do
    for p in naive oract oracv oracvt pract pracvt allon offchip; do
        echo "$b $p"
    done
done > "$SERVE_DIR/batch.txt"
TG_SERVE="$PWD/target/release/tg-serve"
"$TG_SERVE" --batch="$SERVE_DIR/batch.txt" --tiny --quiet \
    --cache="$SERVE_DIR/cache" --telemetry="$SERVE_DIR/cold" \
    > "$SERVE_DIR/cold.txt" 2> "$SERVE_DIR/cold.err"
grep -q 'scenarios=112 hits=0 misses=112' "$SERVE_DIR/cold.err"
"$TG_SERVE" --batch="$SERVE_DIR/batch.txt" --tiny --quiet \
    --cache="$SERVE_DIR/cache" --telemetry="$SERVE_DIR/warm" \
    > "$SERVE_DIR/warm.txt" 2> "$SERVE_DIR/warm.err"
cmp "$SERVE_DIR/cold.txt" "$SERVE_DIR/warm.txt"
grep -q 'scenarios=112 hits=112 misses=0 coalesced=0 invalid=0' "$SERVE_DIR/warm.err"
# The warm trace itself proves zero engine runs.
grep -q '"name":"serve.misses","delta":0' "$SERVE_DIR/warm/trace.jsonl"
grep -q '"name":"serve.hits","delta":112' "$SERVE_DIR/warm/trace.jsonl"

echo "== tg-obs: perf snapshot (CI artifact at target/ci/BENCH_ci.json) =="
# --grids adds the steady-solve grid-scaling axis (cg/mgcg/direct per
# grid edge) to the snapshot; --serve the scenario-service cache-hit
# axis; the self-diff covers their regression gates.
mkdir -p target/ci
cargo run --release -q -p experiments --bin tg-obs -- bench-snapshot \
    --label ci --policies allon,oract,pracvt --out target/ci \
    --grids 64,128 --scaling-solves 2 --serve
cargo run --release -q -p experiments --bin tg-obs -- \
    diff target/ci/BENCH_ci.json target/ci/BENCH_ci.json

echo "== tg-verify: physics oracles + corpus replay (determinism via cmp) =="
cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_a.txt
cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_b.txt
cmp target/ci/verify_a.txt target/ci/verify_b.txt

echo "== tg-verify: pinned solver backends (direct, cg, mgcg must all pass) =="
# The default leg above runs under Auto; these pin the direct LDLT path,
# the Jacobi-CG path, and the multigrid-CG path end-to-end, so every
# oracle (including the serial-vs-parallel sweep with per-engine factor
# caches) is exercised against each solver family.
SIMKIT_SOLVER=direct cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_direct.txt
SIMKIT_SOLVER=cg cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_cg.txt
SIMKIT_SOLVER=mgcg cargo run --release -q -p experiments --bin tg-verify -- \
    --fast --seed=0xC1 --threads=2 --report=target/ci/verify_mgcg.txt

echo "== tg-verify: control oracles under mgcg/direct (double-run cmp) =="
# The closed-loop governor oracles (govern.tracking / no_oscillation /
# anti_windup / gain_monotone) must pass, replay their pinned corpus
# boundaries, and render byte-identical reports across two runs under
# each pinned solver backend.
for backend in mgcg direct; do
    SIMKIT_SOLVER=$backend cargo run --release -q -p experiments --bin tg-verify -- \
        --fast --no-sweep --seed=0xC9 --threads=2 \
        --report="target/ci/verify_govern_${backend}_a.txt"
    SIMKIT_SOLVER=$backend cargo run --release -q -p experiments --bin tg-verify -- \
        --fast --no-sweep --seed=0xC9 --threads=2 \
        --report="target/ci/verify_govern_${backend}_b.txt"
    cmp "target/ci/verify_govern_${backend}_a.txt" "target/ci/verify_govern_${backend}_b.txt"
    for oracle in tracking no_oscillation anti_windup gain_monotone; do
        grep -q "^ok   govern.${oracle}" "target/ci/verify_govern_${backend}_a.txt"
    done
done

echo "== engine equivalence under mgcg (the pinned backend test leg) =="
# run_emits_telemetry_and_solver_profile asserts the solve events carry
# the backend SIMKIT_SOLVER resolves to (thermal.transient_mgcg /
# pdn.ir_mgcg here); solver_backends_agree_over_a_full_run re-checks the
# cross-backend physics equality from a process whose default is mgcg.
SIMKIT_SOLVER=mgcg cargo test --release -q -p thermogater -- \
    run_emits_telemetry_and_solver_profile solver_backends_agree_over_a_full_run

echo "== cross-backend run diff: cg vs direct vs mgcg must agree on the physics =="
# Same trace, same policy, different solver families: the solver-agnostic
# diff gates on identical event structure, gating decisions, emergency
# behaviour, and per-system solve counts, with simulation metrics within
# 1e-6 relative (measured agreement is ~6e-9 — see BENCH.md).
mkdir -p "$TELEMETRY_DIR/cg" "$TELEMETRY_DIR/direct" "$TELEMETRY_DIR/mgcg"
for backend in cg direct mgcg; do
    SIMKIT_SOLVER=$backend cargo run --release -q -p experiments --bin simulate -- \
        --bench lu_ncb --policy oracvt --duration-ms 3 --grid 32 --windows 4 \
        --quiet --telemetry="$TELEMETRY_DIR/$backend"
done
cargo run --release -q -p experiments --bin tg-obs -- diff --solver-agnostic \
    "$TELEMETRY_DIR/cg" "$TELEMETRY_DIR/direct"
cargo run --release -q -p experiments --bin tg-obs -- diff --solver-agnostic \
    "$TELEMETRY_DIR/cg" "$TELEMETRY_DIR/mgcg"

echo "CI OK"
